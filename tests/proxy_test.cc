// Proxy-cache tier tests (src/proxy + ioldrv::ProxyTier).
//
//  * Warm-path structure: a warm co-located IO-Lite proxy serves entirely
//    from the shared unified cache — zero backhaul bytes, zero backhaul
//    copies, zero IPC traffic, zero heap allocations (counting allocator),
//    and every object resident in exactly one cache. The co-located
//    copy-based pair, by contrast, demonstrably double-caches.
//  * Determinism: run-twice telemetry parity for both backhaul modes.
//  * Behaviour: proxy hit rate rises monotonically with the cache budget
//    under a fixed Zipf trace; per-tier accounting is internally
//    consistent.

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "src/driver/proxy_tier.h"
#include "src/proxy/proxy_server.h"
#include "src/system/system.h"
#include "src/workload/trace.h"

// Counting allocator (same pattern as pipeline_test.cc): every global new is
// counted so warm-path zero-allocation claims are enforceable.
static std::atomic<uint64_t> g_alloc_count{0};

void* operator new(size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace {

using iolproxy::BackhaulMode;
using iolproxy::ProxyConfig;
using iolproxy::ProxyDataPath;
using iolproxy::ProxyServer;

iolsys::SystemOptions OptionsFor(ProxyDataPath path) {
  iolsys::SystemOptions options;
  options.cost.cpu_count = 2;
  options.cost.disk_count = 2;
  if (path == ProxyDataPath::kIoLite) {
    options.policy = iolsys::SystemOptions::Policy::kGds;
    options.checksum_cache = true;
  } else {
    options.policy = iolsys::SystemOptions::Policy::kPaperLru;
    options.checksum_cache = false;
  }
  return options;
}

// One assembled two-tier stack for direct-mode tests.
struct ProxyStack {
  std::unique_ptr<iolsys::System> sys;
  std::vector<std::unique_ptr<iolhttp::HttpServer>> origin_servers;
  std::unique_ptr<ProxyServer> proxy;
  std::vector<iolfs::FileId> files;
};

ProxyStack MakeStack(ProxyDataPath path, BackhaulMode mode, ProxyConfig config,
                     int num_files = 4, size_t file_bytes = 6 * 1024,
                     size_t checksum_cache_entries = 65536) {
  ProxyStack s;
  iolsys::SystemOptions options = OptionsFor(path);
  options.checksum_cache_entries = checksum_cache_entries;
  s.sys = std::make_unique<iolsys::System>(options);
  for (int i = 0; i < num_files; ++i) {
    s.files.push_back(
        s.sys->fs().CreateFile("doc" + std::to_string(i), file_bytes + i * 512));
  }
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < 2; ++i) {
    if (path == ProxyDataPath::kIoLite) {
      s.origin_servers.push_back(std::make_unique<iolhttp::FlashLiteServer>(
          &s.sys->ctx(), &s.sys->net(), &s.sys->io(), &s.sys->runtime()));
    } else {
      s.origin_servers.push_back(std::make_unique<iolhttp::FlashServer>(
          &s.sys->ctx(), &s.sys->net(), &s.sys->io()));
    }
    members.push_back(s.origin_servers.back().get());
  }
  config.data_path = path;
  config.backhaul = mode;
  s.proxy = std::make_unique<ProxyServer>(&s.sys->ctx(), &s.sys->net(), &s.sys->io(),
                                          &s.sys->runtime(), members, config);
  return s;
}

// --- Warm-path structure ----------------------------------------------------

TEST(ProxyTest, WarmColocatedIoLitePathIsZeroCopyAndSingleCached) {
  ProxyConfig config;
  ProxyStack s = MakeStack(ProxyDataPath::kIoLite, BackhaulMode::kColocated, config);
  EXPECT_TRUE(s.proxy->shares_unified_cache());
  EXPECT_EQ(&s.proxy->proxy_cache(), &s.sys->cache());

  iolnet::TcpConnection conn(&s.sys->net(), true);
  conn.Connect();
  // Cold pass: every file crosses the IOL-IPC backhaul exactly once.
  for (iolfs::FileId f : s.files) {
    s.proxy->HandleRequest(&conn, f);
  }
  const iolsim::SimStats& stats = s.sys->ctx().stats();
  EXPECT_EQ(stats.proxy_cache_misses, s.files.size());
  EXPECT_EQ(stats.ipc_frames_sent, 2 * s.files.size());  // Request + response.
  EXPECT_GT(stats.ipc_bytes_transferred, 0u);
  EXPECT_EQ(stats.ipc_bytes_copied, 0u);
  EXPECT_GT(stats.backhaul_bytes, 0u);
  EXPECT_EQ(stats.backhaul_bytes_copied, 0u);
  // One unified cache: each object resident exactly once machine-wide.
  EXPECT_EQ(s.sys->cache().entry_count(), s.files.size());

  // Warm passes: pure proxy hits — no backhaul, no IPC, no copies beyond
  // the per-response header fill, no cache growth.
  uint64_t backhaul0 = stats.backhaul_bytes;
  uint64_t ipc_frames0 = stats.ipc_frames_sent;
  uint64_t copied0 = stats.bytes_copied;
  uint64_t hits0 = stats.proxy_cache_hits;
  size_t entries0 = s.sys->cache().entry_count();
  const int kWarmRounds = 25;
  for (int round = 0; round < kWarmRounds; ++round) {
    for (iolfs::FileId f : s.files) {
      s.proxy->HandleRequest(&conn, f);
    }
  }
  uint64_t warm_requests = kWarmRounds * s.files.size();
  EXPECT_EQ(stats.backhaul_bytes, backhaul0);
  EXPECT_EQ(stats.backhaul_bytes_copied, 0u);
  EXPECT_EQ(stats.ipc_frames_sent, ipc_frames0);
  EXPECT_EQ(stats.proxy_cache_hits, hits0 + warm_requests);
  EXPECT_EQ(s.sys->cache().entry_count(), entries0);
  // The only bytes touched per warm response: the freshly generated header.
  EXPECT_EQ(stats.bytes_copied - copied0, warm_requests * iolhttp::kResponseHeaderBytes);
  conn.Close();
}

TEST(ProxyTest, WarmColocatedIoLiteLoopAllocatesNothing) {
  ProxyConfig config;
  // A small checksum cache reaches its at-capacity recycling steady state
  // within the warmup (each response's fresh header is a new generation).
  ProxyStack s = MakeStack(ProxyDataPath::kIoLite, BackhaulMode::kColocated, config,
                           /*num_files=*/4, /*file_bytes=*/6 * 1024,
                           /*checksum_cache_entries=*/64);
  iolnet::TcpConnection conn(&s.sys->net(), true);
  conn.Connect();
  for (int i = 0; i < 200; ++i) {  // Warmup: fill caches, grow pools.
    s.proxy->HandleRequest(&conn, s.files[i % s.files.size()]);
  }
  uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    s.proxy->HandleRequest(&conn, s.files[i % s.files.size()]);
  }
  uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - before;
  conn.Close();
  EXPECT_EQ(allocs, 0u) << "warm co-located proxy hits must not touch the heap";
}

TEST(ProxyTest, ColocatedCopyPairDoubleCachesWhereIoLiteCachesOnce) {
  // The same warm workload, both co-located pairs: the copy-based proxy
  // ends with every object resident in two caches (its private cache and
  // the origin's), the IO-Lite pair in exactly one.
  ProxyConfig config;
  config.cache_bytes = 64ull * 1024 * 1024;
  config.origin_cache_bytes = 0;

  ProxyStack copy = MakeStack(ProxyDataPath::kCopy, BackhaulMode::kColocated, config);
  iolnet::TcpConnection copy_conn(&copy.sys->net(), false);
  copy_conn.Connect();
  for (int round = 0; round < 3; ++round) {
    for (iolfs::FileId f : copy.files) {
      copy.proxy->HandleRequest(&copy_conn, f);
    }
  }
  EXPECT_FALSE(copy.proxy->shares_unified_cache());
  // Double residency: both tiers cache all four objects in full.
  EXPECT_EQ(copy.proxy->proxy_cache().entry_count(), copy.files.size());
  EXPECT_EQ(copy.sys->cache().entry_count(), copy.files.size());
  EXPECT_EQ(copy.proxy->proxy_cache().bytes(), copy.sys->cache().bytes());
  EXPECT_GT(copy.sys->ctx().stats().backhaul_bytes_copied, 0u);
  copy_conn.Close();

  ProxyStack lite = MakeStack(ProxyDataPath::kIoLite, BackhaulMode::kColocated, config);
  iolnet::TcpConnection lite_conn(&lite.sys->net(), true);
  lite_conn.Connect();
  for (int round = 0; round < 3; ++round) {
    for (iolfs::FileId f : lite.files) {
      lite.proxy->HandleRequest(&lite_conn, f);
    }
  }
  EXPECT_EQ(lite.sys->cache().entry_count(), lite.files.size());
  EXPECT_EQ(lite.sys->ctx().stats().backhaul_bytes_copied, 0u);
  lite_conn.Close();
}

TEST(ProxyTest, RemoteIoLiteInsertDoesNotCopyWhereCopyProxyDoes) {
  ProxyConfig config;
  ProxyStack lite = MakeStack(ProxyDataPath::kIoLite, BackhaulMode::kRemote, config);
  iolnet::TcpConnection lite_conn(&lite.sys->net(), true);
  lite_conn.Connect();
  for (iolfs::FileId f : lite.files) {
    lite.proxy->HandleRequest(&lite_conn, f);
  }
  // The remote IO-Lite proxy has its own cache (a second machine)...
  EXPECT_FALSE(lite.proxy->shares_unified_cache());
  EXPECT_EQ(lite.proxy->proxy_cache().entry_count(), lite.files.size());
  // ...but inserting a fetched object mutates only metadata: backhaul
  // payload arrived, none of it was memcpy'd.
  EXPECT_GT(lite.sys->ctx().stats().backhaul_bytes, 0u);
  EXPECT_EQ(lite.sys->ctx().stats().backhaul_bytes_copied, 0u);
  lite_conn.Close();

  ProxyStack copy = MakeStack(ProxyDataPath::kCopy, BackhaulMode::kRemote, config);
  iolnet::TcpConnection copy_conn(&copy.sys->net(), false);
  copy_conn.Connect();
  for (iolfs::FileId f : copy.files) {
    copy.proxy->HandleRequest(&copy_conn, f);
  }
  EXPECT_EQ(copy.sys->ctx().stats().backhaul_bytes_copied,
            copy.sys->ctx().stats().backhaul_bytes);
  copy_conn.Close();
}

// --- Determinism ------------------------------------------------------------

// One full ProxyTier experiment; returns the telemetry records.
ioldrv::Telemetry RunTierOnce(ProxyDataPath path, BackhaulMode mode,
                              ioldrv::ExperimentResult* result_out = nullptr) {
  auto sys = std::make_unique<iolsys::System>(OptionsFor(path));
  iolwl::TraceSpec spec;
  spec.name = "proxy-test";
  spec.num_files = 40;
  spec.total_bytes = 2ull * 1024 * 1024;
  spec.num_requests = 2000;
  spec.mean_request_bytes = 8 * 1024;
  spec.zipf_alpha = 1.0;
  spec.size_sigma = 1.2;
  spec.seed = 7;
  iolwl::Trace trace = iolwl::Trace::Generate(spec);
  std::vector<iolfs::FileId> ids = trace.Materialize(&sys->fs());

  std::vector<std::unique_ptr<iolhttp::HttpServer>> origin_servers;
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < 2; ++i) {
    if (path == ProxyDataPath::kIoLite) {
      origin_servers.push_back(std::make_unique<iolhttp::FlashLiteServer>(
          &sys->ctx(), &sys->net(), &sys->io(), &sys->runtime()));
    } else {
      origin_servers.push_back(std::make_unique<iolhttp::FlashServer>(
          &sys->ctx(), &sys->net(), &sys->io()));
    }
    members.push_back(origin_servers.back().get());
  }

  ProxyConfig pconfig;
  pconfig.data_path = path;
  pconfig.backhaul = mode;
  pconfig.cache_bytes = 512 * 1024;
  ioldrv::ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = 300;
  config.warmup_requests = 50;
  ioldrv::ProxyTier tier(&sys->ctx(), &sys->net(), &sys->io(), &sys->runtime(),
                         ioldrv::Fleet(members), pconfig, config);

  ioldrv::ClosedLoop workload(12);
  ioldrv::Telemetry telemetry;
  iolsim::Rng rng(1234);
  const std::vector<uint32_t>& reqs = trace.requests();
  ioldrv::ExperimentResult result = tier.Run(
      &workload,
      [&]() -> iolfs::FileId { return ids[reqs[rng.NextBelow(reqs.size())]]; },
      &telemetry);
  if (result_out != nullptr) {
    *result_out = result;
  }
  return telemetry;
}

void ExpectSameRecords(const ioldrv::Telemetry& a, const ioldrv::Telemetry& b) {
  ASSERT_EQ(a.records().size(), b.records().size());
  for (size_t i = 0; i < a.records().size(); ++i) {
    EXPECT_EQ(a.records()[i].issue, b.records()[i].issue) << "record " << i;
    EXPECT_EQ(a.records()[i].admit, b.records()[i].admit) << "record " << i;
    EXPECT_EQ(a.records()[i].complete, b.records()[i].complete) << "record " << i;
    EXPECT_EQ(a.records()[i].bytes, b.records()[i].bytes) << "record " << i;
    EXPECT_EQ(a.records()[i].cache_hit, b.records()[i].cache_hit) << "record " << i;
  }
}

TEST(ProxyTest, RunTwiceTelemetryParityColocated) {
  ioldrv::Telemetry a = RunTierOnce(ProxyDataPath::kIoLite, BackhaulMode::kColocated);
  ioldrv::Telemetry b = RunTierOnce(ProxyDataPath::kIoLite, BackhaulMode::kColocated);
  ExpectSameRecords(a, b);
}

TEST(ProxyTest, RunTwiceTelemetryParityRemote) {
  ioldrv::Telemetry a = RunTierOnce(ProxyDataPath::kCopy, BackhaulMode::kRemote);
  ioldrv::Telemetry b = RunTierOnce(ProxyDataPath::kCopy, BackhaulMode::kRemote);
  ExpectSameRecords(a, b);
}

// --- Behaviour --------------------------------------------------------------

// Proxy hit rate under a fixed Zipf trace, as a function of the cache
// budget.
double HitRateAt(uint64_t cache_bytes) {
  auto sys = std::make_unique<iolsys::System>(OptionsFor(ProxyDataPath::kIoLite));
  iolwl::TraceSpec spec;
  spec.name = "proxy-monotone";
  spec.num_files = 80;
  spec.total_bytes = 6ull * 1024 * 1024;
  spec.num_requests = 4000;
  spec.mean_request_bytes = 8 * 1024;
  spec.zipf_alpha = 1.0;
  spec.size_sigma = 1.2;
  spec.seed = 21;
  iolwl::Trace trace = iolwl::Trace::Generate(spec);
  std::vector<iolfs::FileId> ids = trace.Materialize(&sys->fs());

  iolhttp::FlashLiteServer origin(&sys->ctx(), &sys->net(), &sys->io(),
                                  &sys->runtime());
  std::vector<iolhttp::HttpServer*> members{&origin};
  ProxyConfig pconfig;
  pconfig.data_path = ProxyDataPath::kIoLite;
  pconfig.backhaul = BackhaulMode::kRemote;
  pconfig.cache_bytes = cache_bytes;
  ioldrv::ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = 800;
  config.warmup_requests = 0;
  ioldrv::ProxyTier tier(&sys->ctx(), &sys->net(), &sys->io(), &sys->runtime(),
                         ioldrv::Fleet(members), pconfig, config);
  ioldrv::ClosedLoop workload(8);
  iolsim::Rng rng(5150);
  const std::vector<uint32_t>& reqs = trace.requests();
  ioldrv::ExperimentResult result = tier.Run(&workload, [&]() -> iolfs::FileId {
    return ids[reqs[rng.NextBelow(reqs.size())]];
  });
  EXPECT_EQ(result.requests, 800u);
  return result.proxy_hit_rate;
}

TEST(ProxyTest, HitRateRisesMonotonicallyWithCacheSize) {
  double small = HitRateAt(256 * 1024);
  double medium = HitRateAt(1024 * 1024);
  double large = HitRateAt(16ull * 1024 * 1024);  // Holds the whole data set.
  EXPECT_GT(small, 0.0);
  EXPECT_LE(small, medium);
  EXPECT_LE(medium, large);
  EXPECT_GT(large, small);  // The sweep must actually move the needle.
  // Everything fits: only the ~80/800 compulsory cold misses remain.
  EXPECT_GT(large, 0.85);
}

TEST(ProxyTest, PerTierAccountingIsConsistent) {
  ioldrv::ExperimentResult result;
  RunTierOnce(ProxyDataPath::kCopy, BackhaulMode::kRemote, &result);
  EXPECT_GT(result.proxy_hit_rate, 0.0);
  EXPECT_LT(result.proxy_hit_rate, 1.0);
  EXPECT_GE(result.origin_hit_rate, 0.0);
  EXPECT_LE(result.origin_hit_rate, 1.0);
  EXPECT_GT(result.backhaul_bytes, 0u);
  // A copy-based proxy memcpys exactly what it fetched.
  EXPECT_EQ(result.bytes_copied_backhaul, result.backhaul_bytes);
  // Fetch latency summarizes one record per backhaul fetch, and a fetch
  // takes real time.
  EXPECT_GT(result.origin_latency.count, 0u);
  EXPECT_GT(result.origin_latency.p50_ms, 0.0);
}

}  // namespace
