// Cross-module property tests: randomized operation sequences validated
// against reference models, and global invariants that must hold under any
// interleaving (refcount conservation, budget ceilings, snapshot stability,
// checksum composability under arbitrary re-slicing).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/fs/file_io.h"
#include "src/iolite/pipe.h"
#include "src/net/checksum.h"
#include "src/system/system.h"
#include "src/workload/trace.h"
#include "tests/test_util.h"

namespace {

using iolfs::FileId;
using iolsys::System;

// --- Unified cache vs. a reference byte map ----------------------------------

// Random reads and writes against one file, mirrored into a plain string.
// After every operation, any read through the cache must return exactly the
// reference bytes, and earlier snapshots must never change.
class CacheModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheModelTest, ReadsAlwaysMatchReferenceModel) {
  System sys;
  iolsim::Rng rng(GetParam());
  constexpr uint64_t kFileSize = 64 * 1024;
  FileId f = sys.fs().CreateFile("model", kFileSize);

  // Reference contents.
  std::string model = ioltest::FileContent(sys.fs(), f, 0, kFileSize);

  struct Snapshot {
    iolite::Aggregate agg;
    std::string expected;
  };
  std::vector<Snapshot> snapshots;

  for (int step = 0; step < 300; ++step) {
    uint64_t off = rng.NextBelow(kFileSize - 1);
    size_t len = 1 + rng.NextBelow(kFileSize - off);
    switch (rng.NextBelow(4)) {
      case 0: {  // Read and check.
        iolite::Aggregate got = sys.io().ReadExtent(f, off, len);
        ASSERT_EQ(got.ToString(), model.substr(off, len)) << "step " << step;
        break;
      }
      case 1: {  // Write random bytes.
        std::string data;
        for (size_t i = 0; i < len; ++i) {
          data.push_back(static_cast<char>(rng.NextBelow(256)));
        }
        sys.io().WriteExtent(f, off,
                             ioltest::AggFrom(sys.runtime().kernel_pool(), data));
        model.replace(off, len, data);
        break;
      }
      case 2: {  // Take a snapshot to be validated forever after.
        if (snapshots.size() < 8) {
          Snapshot s{sys.io().ReadExtent(f, off, len), model.substr(off, len)};
          snapshots.push_back(std::move(s));
        }
        break;
      }
      case 3: {  // Random eviction pressure.
        sys.cache().EnforceBudget(rng.NextBelow(kFileSize));
        break;
      }
    }
    // Immutability: every snapshot still shows the bytes from its moment.
    for (const Snapshot& s : snapshots) {
      ASSERT_EQ(s.agg.ToString(), s.expected) << "snapshot violated at step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheModelTest,
                         ::testing::Values(3, 7, 31, 127, 8191, 131071));

// --- Cache byte accounting and budget ceiling ---------------------------------

class CacheBudgetTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheBudgetTest, NeverExceedsBudgetAfterEnforce) {
  System sys;
  iolsim::Rng rng(GetParam());
  std::vector<FileId> files;
  for (int i = 0; i < 40; ++i) {
    files.push_back(
        sys.fs().CreateFile("f" + std::to_string(i), 1024 + rng.NextBelow(64 * 1024)));
  }
  uint64_t budget = 128 * 1024;
  for (int step = 0; step < 500; ++step) {
    FileId f = files[rng.NextBelow(files.size())];
    uint64_t size = sys.fs().SizeOf(f);
    size_t len = 1 + rng.NextBelow(size);
    sys.io().ReadExtent(f, rng.NextBelow(size - len + 1), len);
    sys.cache().EnforceBudget(budget);
    ASSERT_LE(sys.cache().bytes(), budget) << "step " << step;
  }
  // Full eviction always reaches zero.
  sys.cache().EnforceBudget(0);
  EXPECT_EQ(sys.cache().bytes(), 0u);
  EXPECT_EQ(sys.cache().entry_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheBudgetTest, ::testing::Values(17, 42, 1001));

// --- Buffer pool: recycling conserves buffers, never aliases live data --------

class PoolInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PoolInvariantTest, LiveBuffersNeverAlias) {
  iolsim::SimContext ctx;
  iolite::BufferPool pool(&ctx, "prop", iolsim::kKernelDomain);
  iolsim::Rng rng(GetParam());

  struct Live {
    iolite::BufferRef buffer;
    std::string expected;
  };
  std::vector<Live> live;

  for (int step = 0; step < 400; ++step) {
    if (live.size() < 20 && rng.NextBelow(2) == 0) {
      size_t n = 1 + rng.NextBelow(100 * 1024);
      std::string data;
      data.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        data.push_back(static_cast<char>(rng.NextBelow(256)));
      }
      live.push_back(Live{pool.AllocateFrom(data.data(), n), std::move(data)});
    } else if (!live.empty()) {
      live.erase(live.begin() + rng.NextBelow(live.size()));
    }
    // No allocation may ever have stomped a live buffer's bytes.
    for (const Live& l : live) {
      ASSERT_EQ(std::string(l.buffer->data(), l.buffer->size()), l.expected)
          << "aliasing detected at step " << step;
    }
  }
  // Refcount conservation: dropping everything returns all buffers.
  size_t live_count = live.size();
  EXPECT_EQ(pool.live_buffers(), live_count);
  live.clear();
  EXPECT_EQ(pool.live_buffers(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolInvariantTest, ::testing::Values(5, 55, 555, 5555));

// --- Checksum: invariant under arbitrary re-slicing ---------------------------

class ChecksumSliceInvarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChecksumSliceInvarianceTest, AnySlicingYieldsSameChecksum) {
  iolsim::SimContext ctx;
  iolite::BufferPool pool(&ctx, "ck", iolsim::kKernelDomain);
  iolnet::ChecksumModule module(&ctx, /*cache_enabled=*/true);
  iolsim::Rng rng(GetParam());

  std::string payload;
  size_t n = 100 + rng.NextBelow(4000);
  for (size_t i = 0; i < n; ++i) {
    payload.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  iolite::Aggregate whole = ioltest::AggFrom(&pool, payload);
  uint16_t reference = module.Checksum(whole);

  for (int trial = 0; trial < 20; ++trial) {
    // Re-slice the same aggregate at random split points (odd offsets
    // exercise the byte-swap composition rule); the checksum is a property
    // of the bytes, not the slicing.
    iolite::Aggregate sliced;
    size_t pos = 0;
    while (pos < whole.size()) {
      size_t len = 1 + rng.NextBelow(301);
      if (pos + len > whole.size()) {
        len = whole.size() - pos;
      }
      sliced.Append(whole.Range(pos, len));
      pos += len;
    }
    ASSERT_EQ(module.Checksum(sliced), reference) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumSliceInvarianceTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

// --- Trace generation invariants ----------------------------------------------

class TraceInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceInvariantTest, PrefixesNestAndConserve) {
  iolwl::TraceSpec spec = iolwl::SubtraceSpec();
  spec.num_files = 400;
  spec.total_bytes = 16ull << 20;
  spec.num_requests = 30000;
  spec.seed = GetParam();
  iolwl::Trace trace = iolwl::Trace::Generate(spec);

  uint64_t prev_bytes = 0;
  size_t prev_requests = 0;
  for (uint64_t budget_mb : {2, 4, 8, 16}) {
    iolwl::Trace prefix = trace.Prefix(budget_mb << 20);
    // Monotone: larger budgets admit supersets.
    ASSERT_GE(prefix.total_bytes(), prev_bytes);
    ASSERT_GE(prefix.requests().size(), prev_requests);
    ASSERT_LE(prefix.total_bytes(), budget_mb << 20);
    // A prefix is literally a prefix of the request log.
    for (size_t i = 0; i < prefix.requests().size(); ++i) {
      ASSERT_EQ(prefix.requests()[i], trace.requests()[i]);
    }
    prev_bytes = prefix.total_bytes();
    prev_requests = prefix.requests().size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceInvariantTest, ::testing::Values(1, 9, 81, 729));

// --- Pipe conservation ----------------------------------------------------------

class PipeConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipeConservationTest, BytesInEqualsBytesOutInOrder) {
  iolsim::SimContext ctx;
  iolite::BufferPool pool(&ctx, "pipe", iolsim::kKernelDomain);
  iolite::PipeChannel channel(&ctx);
  iolsim::Rng rng(GetParam());

  std::string sent;
  std::string received;
  for (int step = 0; step < 300; ++step) {
    if (rng.NextBelow(2) == 0) {
      size_t n = 1 + rng.NextBelow(500);
      std::string data(n, static_cast<char>('a' + rng.NextBelow(26)));
      channel.Push(ioltest::AggFrom(&pool, data));
      sent += data;
    } else {
      iolite::Aggregate got = channel.Pop(1 + rng.NextBelow(700));
      received += got.ToString();
    }
    ASSERT_EQ(channel.bytes_queued(), sent.size() - received.size());
  }
  received += channel.Pop(SIZE_MAX).ToString();
  EXPECT_EQ(received, sent);  // FIFO, lossless, no duplication.
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipeConservationTest, ::testing::Values(6, 66, 666));

}  // namespace
