// Tests for the CDN hierarchy (src/cdn + ioldrv::CdnTier): run-twice byte
// identity under every consistency protocol, the zero-write degenerate
// topology's byte identity with the PR 5 single-proxy tier, the kInvalidate
// "never serve older than the acknowledged write" invariant, the exact
// kRevalidate TTL staleness bound, kStale's serve-forever accounting, and
// per-level backhaul shaping (ROADMAP 5a).
//
// Every test is fork-free and thread-free (label `cdn` in CMake, so both
// sanitizer jobs run it). Where a test drives proxies by hand it uses the
// Drain idiom from fault_test; full runs go through CdnTier::Run with an
// EdgeMix workload so client->edge pinning is on the tested path.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cdn/cdn_topology.h"
#include "src/cdn/version_authority.h"
#include "src/cdn/write_plan.h"
#include "src/driver/cdn_tier.h"
#include "src/driver/edge_mix.h"
#include "src/driver/experiment.h"
#include "src/driver/fleet.h"
#include "src/driver/proxy_tier.h"
#include "src/driver/telemetry.h"
#include "src/httpd/http_server.h"
#include "src/simos/rng.h"
#include "src/system/system.h"

namespace {

using ioldrv::CdnTier;
using ioldrv::EdgeMix;
using ioldrv::EdgePopulationSpec;
using ioldrv::ExperimentConfig;
using ioldrv::ExperimentResult;
using ioldrv::Fleet;
using ioldrv::ProxyTier;
using ioldrv::RequestRecord;
using ioldrv::Telemetry;
using iolcdn::CdnLevelSpec;
using iolcdn::CdnTopology;
using iolcdn::WritePlan;
using iolcdn::WritePlanSpec;
using iolfs::FileId;
using iolproxy::ConsistencyMode;
using iolsim::kMicrosecond;
using iolsim::kMillisecond;
using iolsim::SimTime;
using iolsys::System;

// --- Rig ----------------------------------------------------------------------

struct CdnRig {
  std::unique_ptr<System> sys;
  std::vector<std::unique_ptr<iolhttp::HttpServer>> origins;
  std::unique_ptr<CdnTier> tier;
  std::vector<FileId> files;
};

iolproxy::ProxyConfig BaseProxyConfig() {
  iolproxy::ProxyConfig pc;
  pc.data_path = iolproxy::ProxyDataPath::kIoLite;
  pc.backhaul = iolproxy::BackhaulMode::kRemote;
  return pc;
}

CdnRig MakeCdnRig(CdnTopology topo, int num_origins, int docs,
                  uint64_t doc_bytes, ExperimentConfig config) {
  CdnRig r;
  iolsys::SystemOptions options;
  options.cost.cpu_count = num_origins;
  options.cost.disk_count = num_origins;
  r.sys = std::make_unique<System>(options);
  for (int i = 0; i < docs; ++i) {
    r.files.push_back(
        r.sys->fs().CreateFile("doc" + std::to_string(i), doc_bytes));
  }
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < num_origins; ++i) {
    r.origins.push_back(std::make_unique<iolhttp::FlashLiteServer>(
        &r.sys->ctx(), &r.sys->net(), &r.sys->io(), &r.sys->runtime()));
    members.push_back(r.origins.back().get());
  }
  r.tier = std::make_unique<CdnTier>(
      &r.sys->ctx(), &r.sys->net(), &r.sys->io(), &r.sys->runtime(),
      Fleet(members), std::move(topo), BaseProxyConfig(), config);
  return r;
}

void Drain(System* sys) {
  while (sys->ctx().events().RunOne()) {
  }
}

// Two edges, one regional; every interior link runs `mode`.
CdnTopology TwoLevelTopo(ConsistencyMode mode, SimTime ttl) {
  CdnTopology topo;
  CdnLevelSpec edge;
  edge.count = 2;
  edge.cache_bytes = 256 * 1024;
  CdnLevelSpec regional;
  regional.count = 1;
  regional.cache_bytes = 1024 * 1024;
  topo.levels = {edge, regional};
  topo.protocol = mode;
  topo.ttl = ttl;
  return topo;
}

// Per-edge populations: overlapping uniform windows over the doc set, so
// writes collide with reads on both edges but the hot sets differ.
EdgeMix MakeEdgeMix(const std::vector<FileId>& files, uint64_t seed) {
  auto window = [&files, seed](size_t lo, size_t n) {
    auto rng = std::make_shared<iolsim::Rng>(seed ^ (lo * 0x9e3779b9ull));
    std::vector<FileId> slice(files.begin() + lo, files.begin() + lo + n);
    return [rng, slice]() -> FileId {
      return slice[rng->NextBelow(slice.size())];
    };
  };
  std::vector<EdgePopulationSpec> specs;
  specs.push_back({"metro-a", 2, window(0, 8)});
  specs.push_back({"metro-b", 2, window(4, 8)});
  return EdgeMix(std::move(specs));
}

struct RunCapture {
  Telemetry telemetry;
  ExperimentResult result;
  SimTime clock = 0;
  iolsim::SimStats::CdnLevelStats cdn[iolsim::SimStats::kMaxCdnLevels];
};

RunCapture RunHierarchy(ConsistencyMode mode, SimTime ttl,
                        double writes_per_sec) {
  ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = 400;
  config.warmup_requests = 0;
  CdnRig rig = MakeCdnRig(TwoLevelTopo(mode, ttl), /*num_origins=*/2,
                          /*docs=*/12, /*doc_bytes=*/4 * 1024, config);
  WritePlanSpec wspec;
  wspec.writes_per_sec = writes_per_sec;
  wspec.num_files = rig.files.size();
  wspec.hot_bias = 1.0;
  wspec.seed = 7;
  WritePlan writes(&rig.sys->ctx(), &rig.tier->authority(), wspec);
  rig.tier->set_write_plan(&writes);

  EdgeMix mix = MakeEdgeMix(rig.files, /*seed=*/99);
  RunCapture cap;
  cap.result = rig.tier->Run(&mix, [&rig]() { return rig.files[0]; },
                             &cap.telemetry);
  cap.clock = rig.sys->ctx().clock().now();
  for (int l = 0; l < iolsim::SimStats::kMaxCdnLevels; ++l) {
    cap.cdn[l] = rig.sys->ctx().stats().cdn[l];
  }
  return cap;
}

void ExpectIdenticalStreams(const Telemetry& a, const Telemetry& b) {
  ASSERT_EQ(a.records().size(), b.records().size());
  for (size_t i = 0; i < a.records().size(); ++i) {
    const RequestRecord& x = a.records()[i];
    const RequestRecord& y = b.records()[i];
    EXPECT_EQ(x.issue, y.issue) << i;
    EXPECT_EQ(x.admit, y.admit) << i;
    EXPECT_EQ(x.complete, y.complete) << i;
    EXPECT_EQ(x.bytes, y.bytes) << i;
    EXPECT_EQ(x.server, y.server) << i;
    EXPECT_EQ(x.outcome, y.outcome) << i;
    EXPECT_EQ(x.cache_hit, y.cache_hit) << i;
    EXPECT_EQ(x.counted, y.counted) << i;
  }
}

// --- Determinism: run twice, byte parity, per protocol ------------------------

class CdnDeterminismTest
    : public ::testing::TestWithParam<ConsistencyMode> {};

TEST_P(CdnDeterminismTest, RunTwiceIsByteIdentical) {
  ConsistencyMode mode = GetParam();
  SimTime ttl = 5 * kMillisecond;
  RunCapture a = RunHierarchy(mode, ttl, /*writes_per_sec=*/400);
  RunCapture b = RunHierarchy(mode, ttl, /*writes_per_sec=*/400);
  ExpectIdenticalStreams(a.telemetry, b.telemetry);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.result.cdn_writes, b.result.cdn_writes);
  EXPECT_GT(a.result.cdn_writes, 0u);
  for (int l = 0; l < iolsim::SimStats::kMaxCdnLevels; ++l) {
    EXPECT_EQ(a.cdn[l].hits, b.cdn[l].hits) << l;
    EXPECT_EQ(a.cdn[l].misses, b.cdn[l].misses) << l;
    EXPECT_EQ(a.cdn[l].backhaul_bytes, b.cdn[l].backhaul_bytes) << l;
    EXPECT_EQ(a.cdn[l].stale_serves, b.cdn[l].stale_serves) << l;
    EXPECT_EQ(a.cdn[l].invalidations_sent, b.cdn[l].invalidations_sent) << l;
    EXPECT_EQ(a.cdn[l].revalidations, b.cdn[l].revalidations) << l;
    EXPECT_EQ(a.cdn[l].revalidation_bytes, b.cdn[l].revalidation_bytes) << l;
    EXPECT_EQ(a.cdn[l].fetch_races, b.cdn[l].fetch_races) << l;
  }
  // The protocol actually ran: its own control-traffic counter moved.
  uint64_t inval = a.cdn[0].invalidations_sent + a.cdn[1].invalidations_sent;
  uint64_t reval = a.cdn[0].revalidations + a.cdn[1].revalidations;
  uint64_t stale = a.cdn[0].stale_serves + a.cdn[1].stale_serves;
  switch (mode) {
    case ConsistencyMode::kInvalidate:
      EXPECT_GT(inval, 0u);
      break;
    case ConsistencyMode::kRevalidate:
      EXPECT_GT(reval, 0u);
      break;
    case ConsistencyMode::kStale:
      EXPECT_GT(stale, 0u);
      break;
    case ConsistencyMode::kNone:
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, CdnDeterminismTest,
                         ::testing::Values(ConsistencyMode::kInvalidate,
                                           ConsistencyMode::kRevalidate,
                                           ConsistencyMode::kStale),
                         [](const ::testing::TestParamInfo<ConsistencyMode>& i) {
                           return std::string(iolproxy::Name(i.param));
                         });

// --- Degenerate topology == PR 5 proxy tier -----------------------------------

// A one-level, one-proxy CdnTopology at zero write rate must be
// byte-identical to ProxyTier: same ProxyServer wiring, same engine fast
// path, and every consistency branch is version-0 inert. This is the
// hierarchy's "empty plan == no plan" contract.
TEST(CdnIdentityTest, ZeroWriteSingleProxyMatchesProxyTier) {
  const int kOrigins = 2;
  const int kDocs = 8;
  const uint64_t kDocBytes = 8 * 1024;
  iolproxy::ProxyConfig pc = BaseProxyConfig();
  pc.cache_bytes = 64 * 1024;  // Small: force evictions onto both paths.

  ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = 300;
  config.warmup_requests = 0;

  auto make_mix = [](const std::vector<FileId>& files) {
    auto rng = std::make_shared<iolsim::Rng>(4242);
    std::vector<FileId> all = files;
    std::vector<EdgePopulationSpec> specs;
    specs.push_back({"only-metro", 3, [rng, all]() -> FileId {
                       return all[rng->NextBelow(all.size())];
                     }});
    return EdgeMix(std::move(specs));
  };

  // Flat PR 5 tier.
  Telemetry flat_t;
  SimTime flat_clock = 0;
  {
    iolsys::SystemOptions options;
    options.cost.cpu_count = kOrigins;
    options.cost.disk_count = kOrigins;
    System sys(options);
    std::vector<FileId> files;
    for (int i = 0; i < kDocs; ++i) {
      files.push_back(sys.fs().CreateFile("doc" + std::to_string(i), kDocBytes));
    }
    std::vector<iolhttp::HttpServer*> members;
    std::vector<std::unique_ptr<iolhttp::HttpServer>> origins;
    for (int i = 0; i < kOrigins; ++i) {
      origins.push_back(std::make_unique<iolhttp::FlashLiteServer>(
          &sys.ctx(), &sys.net(), &sys.io(), &sys.runtime()));
      members.push_back(origins.back().get());
    }
    ProxyTier tier(&sys.ctx(), &sys.net(), &sys.io(), &sys.runtime(),
                   Fleet(members), pc, config);
    EdgeMix mix = make_mix(files);
    tier.Run(&mix, [&files]() { return files[0]; }, &flat_t);
    flat_clock = sys.ctx().clock().now();
  }

  // The same wire as a degenerate hierarchy, consistency plumbed in.
  CdnTopology topo;
  CdnLevelSpec only;
  only.count = 1;
  only.cache_bytes = pc.cache_bytes;
  only.link_bytes_per_sec = pc.backhaul_bytes_per_sec;
  only.link_one_way_delay = pc.backhaul_one_way_delay;
  topo.levels = {only};
  topo.protocol = ConsistencyMode::kInvalidate;
  CdnRig rig = MakeCdnRig(std::move(topo), kOrigins, kDocs, kDocBytes, config);
  Telemetry cdn_t;
  EdgeMix mix = make_mix(rig.files);
  ExperimentResult result =
      rig.tier->Run(&mix, [&rig]() { return rig.files[0]; }, &cdn_t);

  ExpectIdenticalStreams(flat_t, cdn_t);
  EXPECT_EQ(flat_clock, rig.sys->ctx().clock().now());
  EXPECT_EQ(result.cdn_writes, 0u);
  EXPECT_EQ(result.stale_serves, 0u);
  ASSERT_EQ(result.cdn_levels.size(), 1u);
  EXPECT_EQ(result.cdn_levels[0].invalidations_sent, 0u);
  EXPECT_EQ(result.cdn_levels[0].fetch_races, 0u);
}

// --- kInvalidate: never serve older than the acknowledged write ---------------

TEST(CdnConsistencyTest, InvalidationNeverServesOlderThanAckedWrite) {
  CdnRig rig = MakeCdnRig(TwoLevelTopo(ConsistencyMode::kInvalidate, 0),
                          /*num_origins=*/1, /*docs=*/2,
                          /*doc_bytes=*/6 * 1024, ExperimentConfig{});
  iolproxy::ProxyServer& edge = rig.tier->proxy(0, 0);
  iolproxy::ProxyServer& regional = rig.tier->proxy(1, 0);
  iolnet::TcpConnection conn(&rig.sys->net(), true);
  conn.Connect();
  FileId doc = rig.files[0];

  // Warm the whole path: edge and regional both hold version 0.
  edge.HandleRequest(&conn, doc);
  Drain(rig.sys.get());
  ASSERT_TRUE(edge.CachesFile(doc));
  ASSERT_TRUE(regional.CachesFile(doc));

  // One origin write: the ack instant is when the slowest invalidation
  // lands. Past the ack, no cache in the tree may hold the old version.
  SimTime before = rig.sys->ctx().clock().now();
  SimTime ack = rig.tier->authority().ApplyWrite(doc);
  EXPECT_GT(ack, before);  // Held copies => a real propagation wait.
  Drain(rig.sys.get());
  EXPECT_GE(rig.sys->ctx().clock().now(), ack);
  EXPECT_FALSE(edge.CachesFile(doc));
  EXPECT_FALSE(regional.CachesFile(doc));

  const iolsim::SimStats& stats = rig.sys->ctx().stats();
  EXPECT_EQ(stats.cdn[0].invalidations_sent, 1u);
  EXPECT_EQ(stats.cdn[1].invalidations_sent, 1u);
  EXPECT_EQ(stats.cdn[0].invalidations_applied, 1u);
  EXPECT_EQ(stats.cdn[1].invalidations_applied, 1u);

  // A post-ack request refetches and serves the written version — zero
  // stale serves anywhere in the tree.
  edge.HandleRequest(&conn, doc);
  Drain(rig.sys.get());
  EXPECT_EQ(edge.proxy_cache().VersionOf(doc), 1u);
  EXPECT_EQ(regional.proxy_cache().VersionOf(doc), 1u);
  EXPECT_EQ(edge.stale_serves(), 0u);
  EXPECT_EQ(regional.stale_serves(), 0u);

  // A write to an uncached object needs no invalidation: ack == now.
  SimTime now = rig.sys->ctx().clock().now();
  EXPECT_EQ(rig.tier->authority().ApplyWrite(rig.files[1]), now);
  conn.Close();
}

// --- kRevalidate: the TTL staleness bound holds exactly -----------------------

TEST(CdnConsistencyTest, RevalidateStalenessNeverExceedsTtl) {
  const SimTime kTtl = 5 * kMillisecond;
  RunCapture cap =
      RunHierarchy(ConsistencyMode::kRevalidate, kTtl, /*writes_per_sec=*/800);
  // The run exercised the machinery: writes landed, conditionals went up.
  EXPECT_GT(cap.result.cdn_writes, 0u);
  uint64_t reval = cap.cdn[0].revalidations + cap.cdn[1].revalidations;
  EXPECT_GT(reval, 0u);
  EXPECT_EQ(cap.cdn[0].revalidation_bytes,
            cap.cdn[0].revalidations * iolproxy::kRevalidationBytes);
  // The bound: an unexpired entry is at most ttl past its last validation,
  // so no serve is ever staler than ttl. Exact, not approximate.
  EXPECT_GT(cap.result.staleness.count, 0u);
  EXPECT_LT(cap.result.staleness.max_ms,
            static_cast<double>(kTtl) / kMillisecond);
}

// --- kStale: serve forever, measure the cost ----------------------------------

TEST(CdnConsistencyTest, StaleModeKeepsServingAndMeasuresAge) {
  CdnRig rig = MakeCdnRig(TwoLevelTopo(ConsistencyMode::kStale, 0),
                          /*num_origins=*/1, /*docs=*/1,
                          /*doc_bytes=*/6 * 1024, ExperimentConfig{});
  iolproxy::ProxyServer& edge = rig.tier->proxy(0, 0);
  iolnet::TcpConnection conn(&rig.sys->net(), true);
  conn.Connect();
  FileId doc = rig.files[0];

  edge.HandleRequest(&conn, doc);
  Drain(rig.sys.get());
  ASSERT_TRUE(edge.CachesFile(doc));

  // Writes neither invalidate nor revalidate anything under kStale.
  rig.tier->authority().ApplyWrite(doc);
  Drain(rig.sys.get());
  SimTime written = rig.tier->authority().WrittenAt(doc);
  EXPECT_TRUE(edge.CachesFile(doc));

  edge.HandleRequest(&conn, doc);
  Drain(rig.sys.get());
  EXPECT_EQ(edge.stale_serves(), 1u);
  ASSERT_EQ(edge.staleness_samples().size(), 1u);
  // The sample prices exactly the serve-to-write gap; it only grows as the
  // object keeps being served without refresh.
  EXPECT_GT(edge.staleness_samples()[0], 0);
  EXPECT_LT(edge.staleness_samples()[0],
            rig.sys->ctx().clock().now() - written + 1);
  const iolsim::SimStats& stats = rig.sys->ctx().stats();
  EXPECT_EQ(stats.cdn[0].invalidations_sent, 0u);
  EXPECT_EQ(stats.cdn[0].revalidations, 0u);
  EXPECT_EQ(stats.cdn[0].stale_serves, 1u);
  conn.Close();
}

// --- Backhaul shaping (ROADMAP 5a) --------------------------------------------

TEST(CdnShapingTest, TightShapeHoldsBackhaulBytes) {
  CdnTopology topo;
  CdnLevelSpec only;
  only.count = 1;
  only.cache_bytes = 1024 * 1024;
  only.shape_bytes_per_sec = 100 * 1024;  // 100 KB/s: ~60ms per 6KB object.
  only.shape_burst_bytes = 8 * 1024;      // One object passes unheld.
  topo.levels = {only};
  topo.protocol = ConsistencyMode::kStale;
  CdnRig rig = MakeCdnRig(std::move(topo), /*num_origins=*/1, /*docs=*/3,
                          /*doc_bytes=*/6 * 1024, ExperimentConfig{});
  iolproxy::ProxyServer& edge = rig.tier->proxy(0, 0);
  iolnet::TcpConnection conn(&rig.sys->net(), true);
  conn.Connect();

  // Three cold fetches back to back: the first rides the burst, the rest
  // wait for tokens. The holds counter is the shaped-bytes audit trail.
  SimTime unshaped_estimate;
  {
    CdnTopology flat = TwoLevelTopo(ConsistencyMode::kStale, 0);
    flat.levels.resize(1);
    flat.levels[0].count = 1;
    flat.levels[0].cache_bytes = 1024 * 1024;
    CdnRig free_rig = MakeCdnRig(std::move(flat), 1, 3, 6 * 1024,
                                 ExperimentConfig{});
    iolnet::TcpConnection c2(&free_rig.sys->net(), true);
    c2.Connect();
    for (FileId f : free_rig.files) {
      free_rig.tier->proxy(0, 0).HandleRequest(&c2, f);
      Drain(free_rig.sys.get());
    }
    c2.Close();
    unshaped_estimate = free_rig.sys->ctx().clock().now();
  }
  for (FileId f : rig.files) {
    edge.HandleRequest(&conn, f);
    Drain(rig.sys.get());
  }
  const iolsim::SimStats& stats = rig.sys->ctx().stats();
  EXPECT_GT(stats.cdn[0].shaper_holds, 0u);
  // Shaping shows up as time: the same fetch sequence takes longer than
  // the unshaped wire.
  EXPECT_GT(rig.sys->ctx().clock().now(), unshaped_estimate);
  conn.Close();
}

}  // namespace
