// Tests for the Web server data paths and the closed-loop driver
// (Sections 3.10, 5.1-5.3).

#include <gtest/gtest.h>

#include <memory>

#include "src/driver/experiment.h"
#include "src/driver/workload.h"
#include "src/httpd/cgi.h"
#include "src/httpd/http_server.h"
#include "src/system/system.h"
#include "tests/test_util.h"

namespace {

using ioldrv::ClosedLoop;
using ioldrv::Experiment;
using ioldrv::ExperimentConfig;
using ioldrv::ExperimentResult;
using iolfs::FileId;
using iolhttp::ApacheServer;
using iolhttp::CopyCgiServer;
using iolhttp::FlashLiteServer;
using iolhttp::FlashServer;
using iolhttp::LiteCgiServer;
using iolsys::System;

class HttpdTest : public ::testing::Test {
 protected:
  HttpdTest() {
    file_ = sys_.fs().CreateFile("doc.html", 20 * 1024);
  }

  // Serves `n` requests on one persistent connection; returns bytes sent.
  size_t Serve(iolhttp::HttpServer* server, int n) {
    iolnet::TcpConnection conn(&sys_.net(), server->uses_iolite_sockets());
    conn.Connect();
    size_t total = 0;
    for (int i = 0; i < n; ++i) {
      total += server->HandleRequest(&conn, file_);
    }
    conn.Close();
    return total;
  }

  System sys_;
  FileId file_;
};

TEST_F(HttpdTest, AllServersSendHeaderPlusBody) {
  FlashServer flash(&sys_.ctx(), &sys_.net(), &sys_.io());
  ApacheServer apache(&sys_.ctx(), &sys_.net(), &sys_.io());
  FlashLiteServer lite(&sys_.ctx(), &sys_.net(), &sys_.io(), &sys_.runtime());
  size_t expected = 20 * 1024 + iolhttp::kResponseHeaderBytes;
  EXPECT_EQ(Serve(&flash, 1), expected);
  EXPECT_EQ(Serve(&apache, 1), expected);
  EXPECT_EQ(Serve(&lite, 1), expected);
}

TEST_F(HttpdTest, FlashCopiesEveryResponseFlashLiteDoesNot) {
  FlashServer flash(&sys_.ctx(), &sys_.net(), &sys_.io());
  Serve(&flash, 5);
  uint64_t flash_copied = sys_.ctx().stats().bytes_copied;
  EXPECT_GE(flash_copied, 5u * 20 * 1024);

  // Fresh system for a clean count.
  System sys2;
  FileId file2 = sys2.fs().CreateFile("doc.html", 20 * 1024);
  FlashLiteServer lite(&sys2.ctx(), &sys2.net(), &sys2.io(), &sys2.runtime());
  iolnet::TcpConnection conn(&sys2.net(), true);
  conn.Connect();
  for (int i = 0; i < 5; ++i) {
    lite.HandleRequest(&conn, file2);
  }
  conn.Close();
  // Only the header generation copies (250 bytes per request).
  EXPECT_LE(sys2.ctx().stats().bytes_copied, 5u * iolhttp::kResponseHeaderBytes);
}

TEST_F(HttpdTest, FlashLiteChecksumsBodyOnceThenOnlyHeaders) {
  FlashLiteServer lite(&sys_.ctx(), &sys_.net(), &sys_.io(), &sys_.runtime());
  Serve(&lite, 10);
  // Body summed once (20 KB); headers summed every time (fresh generation).
  uint64_t expected_max = 20 * 1024 + 10 * iolhttp::kResponseHeaderBytes;
  EXPECT_LE(sys_.ctx().stats().bytes_checksummed, expected_max);
  EXPECT_GE(sys_.ctx().stats().checksum_cache_hits, 9u);
}

TEST_F(HttpdTest, FlashLiteWarmRequestIsCheaperThanFlash) {
  FlashServer flash(&sys_.ctx(), &sys_.net(), &sys_.io());
  FlashLiteServer lite(&sys_.ctx(), &sys_.net(), &sys_.io(), &sys_.runtime());
  iolnet::TcpConnection flash_conn(&sys_.net(), false);
  iolnet::TcpConnection lite_conn(&sys_.net(), true);
  flash_conn.Connect();
  lite_conn.Connect();
  // Warm both paths.
  flash.HandleRequest(&flash_conn, file_);
  lite.HandleRequest(&lite_conn, file_);

  iolsim::SimTime t0 = sys_.ctx().clock().now();
  flash.HandleRequest(&flash_conn, file_);
  iolsim::SimTime flash_time = sys_.ctx().clock().now() - t0;
  t0 = sys_.ctx().clock().now();
  lite.HandleRequest(&lite_conn, file_);
  iolsim::SimTime lite_time = sys_.ctx().clock().now() - t0;
  EXPECT_LT(lite_time, flash_time);
  flash_conn.Close();
  lite_conn.Close();
}

TEST_F(HttpdTest, ApacheChargesMoreCpuThanFlash) {
  FlashServer flash(&sys_.ctx(), &sys_.net(), &sys_.io());
  ApacheServer apache(&sys_.ctx(), &sys_.net(), &sys_.io());
  Serve(&flash, 1);  // Warm the cache.
  iolsim::SimTime t0 = sys_.ctx().clock().now();
  Serve(&flash, 1);
  iolsim::SimTime flash_time = sys_.ctx().clock().now() - t0;
  t0 = sys_.ctx().clock().now();
  Serve(&apache, 1);
  iolsim::SimTime apache_time = sys_.ctx().clock().now() - t0;
  EXPECT_GT(apache_time, flash_time);
  EXPECT_GT(apache.per_connection_memory(), 0u);
}

TEST_F(HttpdTest, SendfileBetweenFlashAndFlashLite) {
  // Section 6.7: sendfile avoids the copy but not the checksum.
  FlashServer flash(&sys_.ctx(), &sys_.net(), &sys_.io());
  iolhttp::SendfileServer sendfile(&sys_.ctx(), &sys_.net(), &sys_.io());
  FlashLiteServer lite(&sys_.ctx(), &sys_.net(), &sys_.io(), &sys_.runtime());
  // Warm all paths.
  Serve(&flash, 1);
  Serve(&sendfile, 1);
  Serve(&lite, 1);

  auto timed = [&](iolhttp::HttpServer* server) {
    iolsim::SimTime t0 = sys_.ctx().clock().now();
    Serve(server, 1);
    return sys_.ctx().clock().now() - t0;
  };
  iolsim::SimTime flash_time = timed(&flash);
  iolsim::SimTime sendfile_time = timed(&sendfile);
  iolsim::SimTime lite_time = timed(&lite);
  EXPECT_LT(sendfile_time, flash_time);  // No socket-buffer copy.
  EXPECT_LT(lite_time, sendfile_time);   // Checksum served from cache.
}

TEST_F(HttpdTest, SendfileCannotUseChecksumCache) {
  iolhttp::SendfileServer sendfile(&sys_.ctx(), &sys_.net(), &sys_.io());
  Serve(&sendfile, 5);
  // Every transmission checksummed in full; no cache hits.
  EXPECT_GE(sys_.ctx().stats().bytes_checksummed, 5u * 20 * 1024);
  EXPECT_EQ(sys_.ctx().stats().checksum_cache_hits, 0u);
}

TEST_F(HttpdTest, CgiServersDeliverTheDocument) {
  CopyCgiServer copy_cgi(&sys_.ctx(), &sys_.net(), &sys_.io(), 8192);
  LiteCgiServer lite_cgi(&sys_.ctx(), &sys_.net(), &sys_.io(), &sys_.runtime(), 8192);
  size_t expected = 8192 + iolhttp::kResponseHeaderBytes;
  EXPECT_EQ(Serve(&copy_cgi, 1), expected);
  EXPECT_EQ(Serve(&lite_cgi, 1), expected);
}

TEST_F(HttpdTest, CopyCgiPaysThreeCopiesLiteCgiNone) {
  System a;
  a.fs().CreateFile("x", 16);
  CopyCgiServer copy_cgi(&a.ctx(), &a.net(), &a.io(), 10000);
  iolnet::TcpConnection conn_a(&a.net(), false);
  conn_a.Connect();
  copy_cgi.HandleRequest(&conn_a, 1);
  // Pipe in + pipe out + gathered writev copy ~ 3x the document.
  EXPECT_GE(a.ctx().stats().bytes_copied, 3u * 10000);
  conn_a.Close();

  System b;
  b.fs().CreateFile("x", 16);
  LiteCgiServer lite_cgi(&b.ctx(), &b.net(), &b.io(), &b.runtime(), 10000);
  uint64_t setup_copies = b.ctx().stats().bytes_copied;  // Doc built once.
  iolnet::TcpConnection conn_b(&b.net(), true);
  conn_b.Connect();
  for (int i = 0; i < 3; ++i) {
    lite_cgi.HandleRequest(&conn_b, 1);
  }
  // Per-request copying is only the 250-byte header.
  EXPECT_LE(b.ctx().stats().bytes_copied - setup_copies,
            3u * iolhttp::kResponseHeaderBytes);
  conn_b.Close();
}

// --- Closed-loop driver -------------------------------------------------------

TEST(DriverTest, DeterministicAcrossRuns) {
  double first_mbps = 0;
  for (int run = 0; run < 2; ++run) {
    System sys;
    FileId f = sys.fs().CreateFile("doc", 50 * 1024);
    FlashServer flash(&sys.ctx(), &sys.net(), &sys.io());
    ExperimentConfig config;
    config.max_requests = 500;
    config.warmup_requests = 10;
    ClosedLoop workload(8);
    Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &flash, config);
    ExperimentResult result = experiment.Run(&workload, [f] { return f; });
    EXPECT_EQ(result.requests, 500u);
    if (run == 0) {
      first_mbps = result.megabits_per_sec;
    } else {
      EXPECT_DOUBLE_EQ(result.megabits_per_sec, first_mbps);
    }
  }
}

TEST(DriverTest, ThroughputNeverExceedsWireCeiling) {
  System sys;
  FileId f = sys.fs().CreateFile("doc", 200 * 1024);
  FlashLiteServer lite(&sys.ctx(), &sys.net(), &sys.io(), &sys.runtime());
  ExperimentConfig config;
  config.max_requests = 2000;
  config.warmup_requests = 50;
  config.persistent_connections = true;
  ClosedLoop workload(40);
  Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &lite, config);
  ExperimentResult result = experiment.Run(&workload, [f] { return f; });
  const iolsim::CostParams& p = sys.ctx().cost().params();
  double ceiling = p.nic_bits_per_sec * p.nic_count * p.wire_efficiency / 1e6;
  EXPECT_LE(result.megabits_per_sec, ceiling * 1.01);
  EXPECT_GT(result.megabits_per_sec, ceiling * 0.9);  // Big files saturate.
}

TEST(DriverTest, PersistentConnectionsBeatNonpersistentOnSmallFiles) {
  auto run = [](bool persistent) {
    System sys;
    FileId f = sys.fs().CreateFile("doc", 5 * 1024);
    FlashLiteServer lite(&sys.ctx(), &sys.net(), &sys.io(), &sys.runtime());
    ExperimentConfig config;
    config.max_requests = 3000;
    config.warmup_requests = 100;
    config.persistent_connections = persistent;
    ClosedLoop workload(40);
    Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &lite, config);
    return experiment.Run(&workload, [f] { return f; }).megabits_per_sec;
  };
  EXPECT_GT(run(true), run(false) * 1.2);
}

TEST(DriverTest, WanDelayIncreasesWithoutStarvingThroughput) {
  // With the client population scaled up, added delay must not collapse
  // Flash-Lite's throughput (Section 5.7).
  auto run = [](iolsim::SimTime delay, int clients) {
    System sys;
    FileId f = sys.fs().CreateFile("doc", 20 * 1024);
    FlashLiteServer lite(&sys.ctx(), &sys.net(), &sys.io(), &sys.runtime());
    ExperimentConfig config;
    config.max_requests = 2000;
    config.warmup_requests = 100;
    config.persistent_connections = true;
    config.delay.one_way_delay = delay / 2;
    ClosedLoop workload(clients);
    Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &lite, config);
    return experiment.Run(&workload, [f] { return f; }).megabits_per_sec;
  };
  double lan = run(0, 64);
  double wan = run(100 * iolsim::kMillisecond, 640);
  EXPECT_GT(wan, lan * 0.5);
}

TEST(DriverTest, CacheBudgetEnforcementEvictsUnderPressure) {
  iolsys::SystemOptions options;
  options.cost.ram_bytes = 8ull << 20;  // Tiny machine.
  options.cost.kernel_reserved_bytes = 1ull << 20;
  System sys(options);
  std::vector<FileId> files;
  for (int i = 0; i < 100; ++i) {
    files.push_back(sys.fs().CreateFile("f" + std::to_string(i), 256 * 1024));
  }
  FlashServer flash(&sys.ctx(), &sys.net(), &sys.io());
  ExperimentConfig config;
  config.max_requests = 400;
  config.enforce_cache_budget = true;
  ClosedLoop workload(4);
  Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &flash, config);
  int i = 0;
  ExperimentResult result =
      experiment.Run(&workload, [&] { return files[i++ % files.size()]; });
  EXPECT_GT(sys.ctx().stats().cache_evictions, 0u);
  EXPECT_LT(result.cache_hit_rate, 0.5);
}

}  // namespace
