// Tests for the converted applications (Section 5.8): functional equality
// between the POSIX and IO-Lite variants, and the expected cost ordering.

#include <gtest/gtest.h>

#include <string>

#include "src/apps/filters.h"
#include "src/apps/gcc_chain.h"
#include "src/system/system.h"
#include "tests/test_util.h"

namespace {

using iolapp::CountMatches;
using iolapp::GccChainConfig;
using iolapp::WcCounts;
using iolapp::WcScan;
using iolfs::FileId;
using iolsys::System;

TEST(WcScanTest, CountsLinesWordsBytes) {
  WcCounts c;
  bool in_word = false;
  std::string text = "one two\nthree  four\n";
  WcScan(text.data(), text.size(), &in_word, &c);
  EXPECT_EQ(c.lines, 2u);
  EXPECT_EQ(c.words, 4u);
  EXPECT_EQ(c.bytes, text.size());
}

TEST(WcScanTest, WordSpanningChunksCountsOnce) {
  WcCounts c;
  bool in_word = false;
  WcScan("hel", 3, &in_word, &c);
  WcScan("lo world", 8, &in_word, &c);
  EXPECT_EQ(c.words, 2u);
}

TEST(CountMatchesTest, FindsAllOccurrences) {
  std::string hay = "abcabcabc";
  EXPECT_EQ(CountMatches(hay.data(), hay.size(), "abc"), 3u);
  EXPECT_EQ(CountMatches(hay.data(), hay.size(), "bca"), 2u);
  EXPECT_EQ(CountMatches(hay.data(), hay.size(), "zzz"), 0u);
  EXPECT_EQ(CountMatches(hay.data(), hay.size(), ""), 0u);
  std::string overlap = "aaaa";
  EXPECT_EQ(CountMatches(overlap.data(), overlap.size(), "aa"), 3u);
}

TEST(WcAppTest, PosixAndIoliteAgree) {
  System sys;
  FileId f = sys.fs().CreateFile("data", 300 * 1024);
  WcCounts posix = iolapp::WcPosix(&sys, f);
  WcCounts iolite = iolapp::WcIolite(&sys, f);
  EXPECT_EQ(posix, iolite);
  EXPECT_EQ(posix.bytes, 300u * 1024);
  EXPECT_GT(posix.words, 0u);
}

TEST(WcAppTest, IoliteIsFasterOnCachedFile) {
  System sys;
  FileId f = sys.fs().CreateFile("data", 1750 * 1024);  // The paper's 1.75 MB.
  sys.io().ReadExtent(f, 0, 1750 * 1024);  // Warm the cache (no disk in timing).

  iolsim::SimTime t0 = sys.ctx().clock().now();
  iolapp::WcPosix(&sys, f);
  iolsim::SimTime posix_time = sys.ctx().clock().now() - t0;

  t0 = sys.ctx().clock().now();
  iolapp::WcIolite(&sys, f);
  iolsim::SimTime iolite_time = sys.ctx().clock().now() - t0;

  // The paper reports a 37% reduction; accept a generous band.
  double saving = 1.0 - static_cast<double>(iolite_time) / static_cast<double>(posix_time);
  EXPECT_GT(saving, 0.25);
  EXPECT_LT(saving, 0.55);
}

TEST(GrepAppTest, PosixAndIoliteAgree) {
  System sys;
  FileId f = sys.fs().CreateFile("data", 200 * 1024);
  // A pattern guaranteed to appear: take it from the file's own content.
  std::string pattern = ioltest::FileContent(sys.fs(), f, 1234, 3);
  uint64_t posix = iolapp::GrepCatPosix(&sys, f, pattern);
  uint64_t iolite = iolapp::GrepCatIolite(&sys, f, pattern);
  EXPECT_EQ(posix, iolite);
  EXPECT_GE(posix, 1u);
}

TEST(GrepAppTest, IoliteEliminatesThreeCopies) {
  System sys;
  FileId f = sys.fs().CreateFile("data", 256 * 1024);
  sys.io().ReadExtent(f, 0, 256 * 1024);

  iolsim::SimTime t0 = sys.ctx().clock().now();
  iolapp::GrepCatPosix(&sys, f, "xyz");
  iolsim::SimTime posix_time = sys.ctx().clock().now() - t0;

  t0 = sys.ctx().clock().now();
  iolapp::GrepCatIolite(&sys, f, "xyz");
  iolsim::SimTime iolite_time = sys.ctx().clock().now() - t0;

  // Paper: 48% improvement (more copies eliminated than in wc).
  double saving = 1.0 - static_cast<double>(iolite_time) / static_cast<double>(posix_time);
  EXPECT_GT(saving, 0.35);
  EXPECT_LT(saving, 0.65);
}

TEST(PermuteAppTest, VariantsAgreeOnSmallInput) {
  // 5 words of 4 chars: 5! * 20 = 2400 bytes through the pipe.
  std::string sentence = "aaaabbbbccccddddeeee";
  System sys_a;
  WcCounts posix = iolapp::PermuteWcPosix(&sys_a, sentence, 4);
  System sys_b;
  WcCounts iolite = iolapp::PermuteWcIolite(&sys_b, sentence, 4);
  EXPECT_EQ(posix, iolite);
  EXPECT_EQ(posix.bytes, 120u * 20);  // 5! permutations of 20 bytes.
}

TEST(PermuteAppTest, IoliteEliminatesPipeCopies) {
  std::string sentence = "aaaabbbbccccddddeeeeffffgggg";  // 7 words: 5040 perms.
  System sys_a;
  iolsim::SimTime t0 = sys_a.ctx().clock().now();
  iolapp::PermuteWcPosix(&sys_a, sentence, 4);
  iolsim::SimTime posix_time = sys_a.ctx().clock().now() - t0;

  System sys_b;
  t0 = sys_b.ctx().clock().now();
  iolapp::PermuteWcIolite(&sys_b, sentence, 4);
  iolsim::SimTime iolite_time = sys_b.ctx().clock().now() - t0;

  double saving = 1.0 - static_cast<double>(iolite_time) / static_cast<double>(posix_time);
  EXPECT_GT(saving, 0.2);   // Paper: 33%.
  EXPECT_LT(saving, 0.5);
}

TEST(GccChainTest, BothVariantsMoveSameBytes) {
  GccChainConfig config;
  config.num_files = 3;
  config.total_source_bytes = 30 * 1024;
  System sys_a;
  uint64_t posix_bytes = iolapp::GccChainPosix(&sys_a, config);
  System sys_b;
  uint64_t iolite_bytes = iolapp::GccChainIolite(&sys_b, config);
  EXPECT_EQ(posix_bytes, iolite_bytes);
  EXPECT_GT(posix_bytes, config.total_source_bytes);  // Expansion happened.
}

TEST(GccChainTest, ComputeBoundPipelineGainsLittle) {
  GccChainConfig config;
  config.num_files = 5;
  config.total_source_bytes = 50 * 1024;
  System sys_a;
  iolsim::SimTime t0 = sys_a.ctx().clock().now();
  iolapp::GccChainPosix(&sys_a, config);
  iolsim::SimTime posix_time = sys_a.ctx().clock().now() - t0;

  System sys_b;
  t0 = sys_b.ctx().clock().now();
  iolapp::GccChainIolite(&sys_b, config);
  iolsim::SimTime iolite_time = sys_b.ctx().clock().now() - t0;

  // Paper: ~1% (6.90 s vs 6.83 s). Accept < 10%.
  double saving = 1.0 - static_cast<double>(iolite_time) / static_cast<double>(posix_time);
  EXPECT_GE(saving, 0.0);
  EXPECT_LT(saving, 0.10);
}

}  // namespace
