// Multi-process tests for the shared-memory data plane: the primitives
// exercised by real fork()ed processes, crash recovery, cross-mode byte
// identity of the full plane, and the out-of-process verification surface
// (fresh region attach + scripts/shm_inspect.py).
//
// Everything fork-based lives here (ctest labels "ipc;fork") so the TSan job
// can run ipc_structures_test without fork-under-sanitizer caveats.

#include <gtest/gtest.h>
#include <libgen.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/driver/process_tier.h"
#include "src/ipc/mpmc_queue.h"
#include "src/ipc/process_plane.h"
#include "src/ipc/shm_counters.h"
#include "src/ipc/shm_future.h"
#include "src/ipc/shm_map.h"
#include "src/ipc/shm_region.h"
#include "src/ipc/shm_table.h"

namespace {

using iolipc::MpmcQueue;
using iolipc::PlaneMode;
using iolipc::ShmFuturePool;
using iolipc::ShmMap;
using iolipc::ShmRegion;
using iolipc::ShmTable;
using iolipc::SliceDesc;
using iolipc::WorkerGroup;

bool HaveDevShm() { return access("/dev/shm", W_OK) == 0; }

uint64_t XorShift(uint64_t* s) {
  *s ^= *s << 13;
  *s ^= *s >> 7;
  *s ^= *s << 17;
  return *s;
}

// Shared scratch carved out of the region so forked workers can report back
// and claim a per-worker id. Must be trivially constructible from zeroes.
struct ForkScratch {
  std::atomic<uint32_t> ticket;   // Worker-id dispenser.
  std::atomic<uint64_t> popped;   // Items consumed so far.
  std::atomic<uint64_t> sum;      // Fold of consumed payloads.
};

ForkScratch* CarveScratch(ShmRegion* region) {
  auto* s = reinterpret_cast<ForkScratch*>(region->AllocateExtent(sizeof(ForkScratch)));
  std::memset(reinterpret_cast<void*>(s), 0, sizeof(*s));
  return s;
}

// --- Randomized MPMC property test across forked processes ------------------

TEST(ForkPlaneTest, MpmcQueueDeliversEveryItemExactlyOnceAcrossProcesses) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;  // 4 forked processes total.
  constexpr uint64_t kPerProducer = 20000;
  constexpr uint64_t kTotal = kProducers * kPerProducer;

  auto region = ShmRegion::Create(4u << 20);  // Anonymous: fork-shared.
  ASSERT_NE(region, nullptr);
  ShmTable table = ShmTable::Create(region.get(), 4);
  MpmcQueue q = MpmcQueue::Create(region.get(), &table, "q", 128);
  ASSERT_TRUE(q.valid());
  ForkScratch* scratch = CarveScratch(region.get());

  // Producers push pseudo-random payloads from per-producer deterministic
  // seeds; the parent recomputes the expected fold without sharing state.
  WorkerGroup producers;
  ASSERT_TRUE(producers.Launch(PlaneMode::kProcesses, kProducers, [&] {
    uint32_t id = scratch->ticket.fetch_add(1, std::memory_order_relaxed);
    uint64_t rng = 0x9e3779b97f4a7c15ull * (id + 1);
    for (uint64_t i = 0; i < kPerProducer; ++i) {
      SliceDesc d{};
      d.offset = XorShift(&rng);
      d.length = 1;
      while (!q.TryPush(d)) {
        sched_yield();
      }
    }
  }));
  WorkerGroup consumers;
  ASSERT_TRUE(consumers.Launch(PlaneMode::kProcesses, kConsumers, [&] {
    SliceDesc d;
    for (;;) {
      if (q.TryPop(&d)) {
        scratch->sum.fetch_add(d.offset, std::memory_order_relaxed);
        if (scratch->popped.fetch_add(1, std::memory_order_relaxed) + 1 == kTotal) {
          return;
        }
      } else if (scratch->popped.load(std::memory_order_relaxed) >= kTotal) {
        return;
      } else {
        sched_yield();
      }
    }
  }));
  EXPECT_EQ(producers.JoinAll(), 0);
  EXPECT_EQ(consumers.JoinAll(), 0);

  uint64_t expect = 0;
  for (int id = 0; id < kProducers; ++id) {
    uint64_t rng = 0x9e3779b97f4a7c15ull * (id + 1);
    for (uint64_t i = 0; i < kPerProducer; ++i) {
      expect += XorShift(&rng);
    }
  }
  EXPECT_EQ(scratch->popped.load(), kTotal);
  EXPECT_EQ(scratch->sum.load(), expect)
      << "every pushed payload consumed exactly once";
  SliceDesc leftover;
  EXPECT_FALSE(q.TryPop(&leftover));
}

// --- ShmMap torture across forked processes ---------------------------------

TEST(ForkPlaneTest, MapTortureAcrossProcessesKeepsAccountingConsistent) {
  constexpr int kWorkers = 3;
  constexpr int kOpsPerWorker = 20000;
  constexpr uint64_t kKeySpace = 48;

  auto region = ShmRegion::Create(4u << 20);
  ASSERT_NE(region, nullptr);
  ShmTable table = ShmTable::Create(region.get(), 4);
  ShmMap map = ShmMap::Create(region.get(), &table, "m", 128);
  ASSERT_TRUE(map.valid());
  ForkScratch* scratch = CarveScratch(region.get());

  WorkerGroup workers;
  ASSERT_TRUE(workers.Launch(PlaneMode::kProcesses, kWorkers, [&] {
    uint32_t id = scratch->ticket.fetch_add(1, std::memory_order_relaxed);
    uint64_t rng = 0xda3e39cb94b95bdbull * (id + 1);
    for (int i = 0; i < kOpsPerWorker; ++i) {
      uint64_t r = XorShift(&rng);
      uint64_t key = r % kKeySpace;
      SliceDesc v{};
      v.offset = key * 64;
      v.length = 64;
      switch (r % 5) {
        case 0:
          map.Insert(key, v);
          break;
        case 1: {
          SliceDesc out;
          if (map.Lookup(key, &out) && out.offset != key * 64) {
            _exit(7);  // Torn value observed: fail loudly from the child.
          }
          break;
        }
        case 2: {
          SliceDesc out;
          if (map.LookupAndPin(key, &out)) {
            if (out.length != 64) {
              _exit(7);
            }
            map.Unpin(key);
          }
          break;
        }
        case 3:
          map.Erase(key);
          break;
        case 4:
          map.EvictOne(nullptr, nullptr);
          break;
      }
    }
  }));
  EXPECT_EQ(workers.JoinAll(), 0) << "a child observed a torn map value";

  // Quiesced: header accounting must match a full rescan, no pins leaked.
  uint32_t live = 0;
  uint64_t bytes = 0;
  for (uint64_t key = 0; key < kKeySpace; ++key) {
    SliceDesc v;
    if (map.Lookup(key, &v)) {
      ++live;
      bytes += v.length;
      EXPECT_EQ(v.offset, key * 64);
      EXPECT_EQ(map.PinsOf(key), 0) << "leaked pin on key " << key;
    }
  }
  EXPECT_EQ(map.size(), live);
  EXPECT_EQ(map.bytes(), bytes);
}

// --- Crash recovery ----------------------------------------------------------

// A filler process takes the fill order and dies without completing. The
// waiter must time out, fail the future itself, and leave the slot cleanly
// reusable — no deadlock, no stuck kPending slot.
TEST(ForkPlaneTest, CrashedFillerResolvesTheFutureByTimeout) {
  auto region = ShmRegion::Create(4u << 20);
  ASSERT_NE(region, nullptr);
  ShmTable table = ShmTable::Create(region.get(), 8);
  MpmcQueue fill_q = MpmcQueue::Create(region.get(), &table, "fills", 8);
  ShmFuturePool futures = ShmFuturePool::Create(region.get(), &table, "f", 4);
  ASSERT_TRUE(fill_q.valid());
  ASSERT_TRUE(futures.valid());

  WorkerGroup crasher;
  ASSERT_TRUE(crasher.Launch(PlaneMode::kProcesses, 1, [&] {
    iolipc::FillRequestMsg msg;
    while (!fill_q.PopAs(&msg)) {
      sched_yield();
    }
    _exit(1);  // Crash while holding the fill order.
  }));

  iolipc::FutureHandle h = futures.Acquire();
  ASSERT_NE(h, iolipc::kInvalidFuture);
  iolipc::FillRequestMsg msg{};
  msg.file_id = 1;
  msg.future = h;
  ASSERT_TRUE(fill_q.PushAs(msg));

  ShmFuturePool::WaitResult r =
      futures.Wait(h, /*timeout_us=*/200'000, [] { sched_yield(); });
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.timed_out) << "the waiter itself failed the abandoned future";
  EXPECT_EQ(futures.CountInState(ShmFuturePool::kPending), 0u);
  futures.Release(h);
  EXPECT_EQ(futures.allocated(), 0u);
  // The slot is immediately reusable for the next request.
  iolipc::FutureHandle h2 = futures.Acquire();
  EXPECT_NE(h2, iolipc::kInvalidFuture);
  ASSERT_TRUE(futures.Fail(h2, 1));
  futures.Release(h2);

  EXPECT_EQ(crasher.JoinAll(), 1) << "exactly the one deliberate abnormal exit";
}

// A full plane whose origin fleet never answers (zero origin workers): every
// static miss must come back as an error within the fill timeout, the run
// must terminate, and the workers must exit cleanly.
TEST(ForkPlaneTest, PlaneWithNoOriginWorkersFailsRequestsInsteadOfHanging) {
  ioldrv::ProcessTierConfig cfg;
  cfg.mode = PlaneMode::kProcesses;
  cfg.region_name.clear();
  cfg.requests = 6;
  cfg.inflight = 2;
  cfg.docs.doc_count = 4;
  cfg.docs.doc_bytes = 4096;
  cfg.cgi_every = 0;
  cfg.proxy_workers = 2;
  cfg.origin_workers = 0;  // Nobody fills: every miss is an orphaned future.
  cfg.cgi_workers = 0;
  cfg.fill_wait_us = 100'000;
  cfg.client_wait_us = 2'000'000;

  ioldrv::ProcessTierResult r = ioldrv::RunProcessTier(cfg);
  EXPECT_TRUE(r.ok) << "workers joined cleanly";
  EXPECT_EQ(r.requests, 0u);
  EXPECT_EQ(r.errors, 6u) << "every request resolved, all with errors";
  EXPECT_GT(r.future_errors, 0u);
  EXPECT_EQ(r.abnormal_worker_exits, 0);
}

// --- The real multi-process plane --------------------------------------------

TEST(ForkPlaneTest, ProcessesModeIsByteIdenticalWithZeroCrossProcessCopies) {
  ioldrv::ProcessTierConfig cfg;
  cfg.region_name = "iolite-test-ident";
  cfg.requests = 200;
  cfg.inflight = 8;
  cfg.docs.doc_count = 16;
  cfg.docs.doc_bytes = 12 * 1024;
  cfg.cgi_every = 5;
  cfg.cgi_body_bytes = 777;
  cfg.proxy_workers = 2;
  cfg.origin_workers = 1;
  cfg.cgi_workers = 1;

  cfg.mode = PlaneMode::kInProcess;
  ioldrv::ProcessTierResult sim = ioldrv::RunProcessTier(cfg);
  ASSERT_TRUE(sim.ok);
  ASSERT_EQ(sim.errors, 0u);
  ASSERT_TRUE(sim.byte_identical);

  cfg.mode = PlaneMode::kProcesses;
  ioldrv::ProcessTierResult proc = ioldrv::RunProcessTier(cfg);
  ASSERT_TRUE(proc.ok);
  EXPECT_EQ(proc.errors, 0u);
  EXPECT_EQ(proc.abnormal_worker_exits, 0);
  EXPECT_TRUE(proc.byte_identical) << "every response verified against the reference";
  EXPECT_EQ(proc.response_checksum, sim.response_checksum)
      << "forked processes serve the exact byte stream of the simulator";
  EXPECT_EQ(proc.requests, 200u);

  // The PR's central claim, checked from outside the serving processes: the
  // counters come from a fresh attach of the region by name when POSIX shm
  // is available, and the warm path copied zero payload bytes.
  EXPECT_EQ(proc.bytes_copied_cross_process, 0u);
  if (HaveDevShm()) {
    EXPECT_TRUE(proc.counters_out_of_process)
        << "counters must be read through a fresh attach, not in-place";
  }
  EXPECT_GT(proc.cache_hits, 0u);
  EXPECT_GT(proc.origin_fills, 0u);
  EXPECT_GT(proc.cgi_requests, 0u);
}

// --- Supervision: crash at the worst instant, recover, finish the run --------

TEST(ForkPlaneTest, SupervisorRespawnsDeadProxyAndSweepsItsPin) {
  ioldrv::ProcessTierConfig cfg;
  cfg.mode = PlaneMode::kProcesses;
  cfg.region_name.clear();
  cfg.requests = 160;
  cfg.inflight = 4;
  cfg.docs.doc_count = 8;
  cfg.docs.doc_bytes = 8 * 1024;
  cfg.cgi_every = 0;
  cfg.proxy_workers = 2;
  cfg.origin_workers = 1;
  cfg.cgi_workers = 0;
  cfg.supervise = true;
  // Proxy 0 _Exit(9)s the moment it takes its 5th pin: ledger slot recorded,
  // map pin held, client future unresolved — the worst possible instant.
  cfg.proxy_die_after_pins = 5;
  cfg.client_retries = 2;  // The orphaned request times out and is re-issued.
  cfg.fill_wait_us = 200'000;
  cfg.client_wait_us = 500'000;

  ioldrv::ProcessTierResult r = ioldrv::RunProcessTier(cfg);
  ASSERT_TRUE(r.ok) << "final join clean despite the injected crash";
  EXPECT_GE(r.abnormal_worker_exits, 1);
  EXPECT_GE(r.worker_respawns, 1u) << "the dead slot was relaunched";
  EXPECT_GE(r.pins_swept, 1u) << "the crashed worker's ledgered pin was reclaimed";
  EXPECT_EQ(r.leaked_pins, 0u) << "no doc key still pinned after quiesce";
  EXPECT_EQ(r.requests + r.errors, 160u) << "every request resolved";
  EXPECT_GE(r.client_retries_used, 1u);
  EXPECT_EQ(r.errors, 0u) << "retries converted the crash into late successes";
  EXPECT_TRUE(r.byte_identical);
}

// --- Region lifecycle: sweeping segments left by dead processes --------------

TEST(ForkPlaneTest, SweepStaleReclaimsRegionsOfDeadOwnersOnly) {
  if (!HaveDevShm()) {
    GTEST_SKIP() << "no /dev/shm in this environment";
  }
  constexpr char kStaleName[] = "/iolite-test-sweep-victim";
  constexpr char kLiveName[] = "/iolite-test-sweep-live";
  ShmRegion::SweepStale("iolite-test-sweep");  // Clean slate.

  // A child creates a named region and dies without running destructors —
  // exactly the leak SweepStale exists for.
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto leaked = ShmRegion::Create(1u << 20, kStaleName);
    _exit(leaked != nullptr && leaked->posix_shm_backed() ? 0 : 3);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  if (!WIFEXITED(status) || WEXITSTATUS(status) == 3) {
    GTEST_SKIP() << "POSIX shm not usable here; nothing to sweep";
  }
  ASSERT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(access("/dev/shm/iolite-test-sweep-victim", F_OK), 0)
      << "the child's segment outlived it";

  auto live = ShmRegion::Create(1u << 20, kLiveName);
  ASSERT_NE(live, nullptr);

  EXPECT_EQ(ShmRegion::SweepStale("iolite-test-sweep"), 1)
      << "exactly the dead owner's segment reclaimed";
  EXPECT_NE(access("/dev/shm/iolite-test-sweep-victim", F_OK), 0);
  EXPECT_EQ(access("/dev/shm/iolite-test-sweep-live", F_OK), 0)
      << "a live owner's segment must survive the sweep";
}

// --- The Python inspector ----------------------------------------------------

std::string InspectorPath() {
  char buf[4096];
  std::snprintf(buf, sizeof(buf), "%s", __FILE__);
  std::string dir = dirname(buf);
  std::string path = dir + "/../scripts/shm_inspect.py";
  return access(path.c_str(), R_OK) == 0 ? path : std::string();
}

TEST(ForkPlaneTest, ShmInspectDumpsALivePlaneFromOutside) {
  if (!HaveDevShm()) {
    GTEST_SKIP() << "no /dev/shm in this environment";
  }
  if (std::system("python3 -c pass >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 unavailable";
  }
  std::string script = InspectorPath();
  if (script.empty()) {
    GTEST_SKIP() << "scripts/shm_inspect.py not found from " << __FILE__;
  }

  auto region = ShmRegion::Create(8u << 20, "/iolite-test-inspect");
  ASSERT_NE(region, nullptr);
  if (!region->posix_shm_backed()) {
    GTEST_SKIP() << "POSIX shm not usable here";
  }
  iolipc::PlaneConfig pc;
  pc.queue_capacity = 32;
  pc.map_capacity = 64;
  pc.future_capacity = 8;
  pc.header_slots = 8;
  pc.cgi_slots = 4;
  pc.copy_slots = 4;
  pc.copy_slot_bytes = 4096;
  iolipc::PlaneShared plane = iolipc::CreatePlane(region.get(), pc);
  ASSERT_TRUE(plane.valid());
  plane.counters.Add(iolipc::kBytesServed, 12345);
  SliceDesc v{};
  v.offset = 4096;
  v.length = 512;
  ASSERT_EQ(plane.cache_map.Insert(7, v), ShmMap::InsertResult::kInserted);

  std::string shm_name = region->name();
  if (!shm_name.empty() && shm_name.front() == '/') {
    shm_name.erase(0, 1);
  }
  std::string cmd = "python3 " + script + " " + shm_name + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string out;
  char chunk[512];
  while (fgets(chunk, sizeof(chunk), pipe) != nullptr) {
    out += chunk;
  }
  int rc = pclose(pipe);
  ASSERT_TRUE(WIFEXITED(rc)) << out;
  EXPECT_EQ(WEXITSTATUS(rc), 0) << out;

  // The inspector saw the directory and decoded the structures with nothing
  // but the ABI offsets.
  EXPECT_NE(out.find("plane.q.client"), std::string::npos) << out;
  EXPECT_NE(out.find("plane.map.cache"), std::string::npos) << out;
  EXPECT_NE(out.find("\"bytes_served\": 12345"), std::string::npos) << out;
  EXPECT_NE(out.find("\"key\": 7"), std::string::npos) << out;
  EXPECT_NE(out.find("\"payload_length\": 512"), std::string::npos) << out;
}

}  // namespace
