// Determinism and golden-parity tests for the discrete-event engine.
//
// The allocation-free engine rebuild (pooled events, inline continuations,
// heap-of-PODs event queue, O(1) resource units) must not perturb simulated
// results: same event order, same Telemetry streams, same figure numbers.
// Two layers of defense:
//
//  * Run-twice parity: a fig03-style experiment executed twice in-process
//    yields byte-identical per-request record streams.
//  * Golden end-to-end checks: the fig03/fig05 smoke configurations are
//    pinned to the exact numbers the pre-rebuild engine produced (captured
//    from commit e6f7449 + the events_dispatched counter). Any engine
//    change that reorders events, re-times a stage, or double-counts an
//    operation fails these loudly. If a change is *supposed* to alter
//    simulated behavior, recapture the goldens and say so in the PR.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/driver/experiment.h"
#include "src/driver/telemetry.h"
#include "src/driver/workload.h"
#include "src/system/system.h"

namespace {

using iolbench::ServerKind;

// One golden row: end-to-end result + machine counters for a smoke config.
struct Golden {
  uint64_t requests;
  uint64_t bytes;
  double mbps;
  double p50_ms;
  double p99_ms;
  double cache_hit_rate;
  uint64_t bytes_copied;
  uint64_t bytes_checksummed;
  uint64_t checksum_cache_hits;
  uint64_t pages_mapped;
  uint64_t syscalls;
  uint64_t packets_sent;
  uint64_t tcp_connections;
  uint64_t disk_reads;
  uint64_t events_dispatched;
  int64_t final_clock_ns;
};

struct RunOutput {
  ioldrv::ExperimentResult result;
  iolsim::SimStats stats;
  int64_t final_clock_ns = 0;
  std::vector<ioldrv::RequestRecord> records;
};

// The fig03 smoke shape: 8 clients, 120 counted requests, 20 warmup,
// nonpersistent connections, one document.
RunOutput RunSingleFileSmoke(ServerKind kind, size_t file_bytes) {
  iolbench::Bench b = iolbench::MakeBench(kind);
  iolfs::FileId f = b.sys->fs().CreateFile("doc", file_bytes);
  ioldrv::ExperimentConfig config;
  config.persistent_connections = false;
  config.max_requests = 120;
  config.warmup_requests = 20;
  ioldrv::ClosedLoop workload(8);
  ioldrv::Experiment experiment(&b.sys->ctx(), &b.sys->net(), &b.sys->cache(),
                                b.server.get(), config);
  RunOutput out;
  out.result = experiment.Run(&workload, [f] { return f; });
  out.stats = b.sys->ctx().stats();
  out.final_clock_ns = b.sys->ctx().clock().now();
  out.records = experiment.telemetry().records();
  return out;
}

// The fig05 smoke shape: same population, FastCGI servers.
RunOutput RunCgiSmoke(ServerKind kind, size_t doc_bytes, iolhttp::CgiTransport transport) {
  iolsys::SystemOptions options;
  options.checksum_cache = iolbench::IsLite(kind);
  auto sys = std::make_unique<iolsys::System>(options);
  sys->fs().CreateFile("unused", 16);
  std::unique_ptr<iolhttp::HttpServer> server;
  if (iolbench::IsLite(kind)) {
    server = std::make_unique<iolhttp::LiteCgiServer>(&sys->ctx(), &sys->net(), &sys->io(),
                                                      &sys->runtime(), doc_bytes, transport);
  } else {
    server = std::make_unique<iolhttp::CopyCgiServer>(&sys->ctx(), &sys->net(), &sys->io(),
                                                      doc_bytes, kind == ServerKind::kApache);
  }
  ioldrv::ExperimentConfig config;
  config.persistent_connections = false;
  config.max_requests = 120;
  config.warmup_requests = 20;
  ioldrv::ClosedLoop workload(8);
  ioldrv::Experiment experiment(&sys->ctx(), &sys->net(), &sys->cache(), server.get(),
                                config);
  RunOutput out;
  out.result = experiment.Run(&workload, [] { return iolfs::FileId{1}; });
  out.stats = sys->ctx().stats();
  out.final_clock_ns = sys->ctx().clock().now();
  out.records = experiment.telemetry().records();
  return out;
}

void ExpectMatchesGolden(const RunOutput& out, const Golden& g) {
  EXPECT_EQ(out.result.requests, g.requests);
  EXPECT_EQ(out.result.bytes, g.bytes);
  EXPECT_DOUBLE_EQ(out.result.megabits_per_sec, g.mbps);
  EXPECT_DOUBLE_EQ(out.result.latency.p50_ms, g.p50_ms);
  EXPECT_DOUBLE_EQ(out.result.latency.p99_ms, g.p99_ms);
  EXPECT_DOUBLE_EQ(out.result.cache_hit_rate, g.cache_hit_rate);
  EXPECT_EQ(out.stats.bytes_copied, g.bytes_copied);
  EXPECT_EQ(out.stats.bytes_checksummed, g.bytes_checksummed);
  EXPECT_EQ(out.stats.checksum_cache_hits, g.checksum_cache_hits);
  EXPECT_EQ(out.stats.pages_mapped, g.pages_mapped);
  EXPECT_EQ(out.stats.syscalls, g.syscalls);
  EXPECT_EQ(out.stats.packets_sent, g.packets_sent);
  EXPECT_EQ(out.stats.tcp_connections, g.tcp_connections);
  EXPECT_EQ(out.stats.disk_reads, g.disk_reads);
  EXPECT_EQ(out.stats.events_dispatched, g.events_dispatched);
  EXPECT_EQ(out.final_clock_ns, g.final_clock_ns);
}

// --- Run-twice parity --------------------------------------------------------

void ExpectIdenticalStreams(const std::vector<ioldrv::RequestRecord>& a,
                            const std::vector<ioldrv::RequestRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].issue, b[i].issue) << "record " << i;
    EXPECT_EQ(a[i].admit, b[i].admit) << "record " << i;
    EXPECT_EQ(a[i].complete, b[i].complete) << "record " << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << "record " << i;
    EXPECT_EQ(a[i].server, b[i].server) << "record " << i;
    EXPECT_EQ(a[i].cache_hit, b[i].cache_hit) << "record " << i;
    EXPECT_EQ(a[i].counted, b[i].counted) << "record " << i;
  }
}

TEST(DeterminismTest, SingleFileRunTwiceProducesIdenticalTelemetryStreams) {
  RunOutput a = RunSingleFileSmoke(ServerKind::kFlash, 5 * 1024);
  RunOutput b = RunSingleFileSmoke(ServerKind::kFlash, 5 * 1024);
  ExpectIdenticalStreams(a.records, b.records);
  EXPECT_EQ(a.final_clock_ns, b.final_clock_ns);
  EXPECT_EQ(a.stats.events_dispatched, b.stats.events_dispatched);
}

TEST(DeterminismTest, LiteRunTwiceProducesIdenticalTelemetryStreams) {
  RunOutput a = RunSingleFileSmoke(ServerKind::kFlashLite, 50 * 1024);
  RunOutput b = RunSingleFileSmoke(ServerKind::kFlashLite, 50 * 1024);
  ExpectIdenticalStreams(a.records, b.records);
  EXPECT_EQ(a.final_clock_ns, b.final_clock_ns);
  EXPECT_EQ(a.stats.events_dispatched, b.stats.events_dispatched);
}

// --- Golden end-to-end checks (values captured on the pre-rebuild engine) ----

TEST(GoldenTest, Fig03Flash5k) {
  ExpectMatchesGolden(RunSingleFileSmoke(ServerKind::kFlash, 5 * 1024),
                      Golden{120, 644400, 116.99346405228758, 1.4705999999999999,
                             45.560758, 0.94482758620689655, 789390, 789390, 0, 16, 147,
                             735, 147, 8, 1332, 71310982});
}

TEST(GoldenTest, Fig03Apache5k) {
  ExpectMatchesGolden(RunSingleFileSmoke(ServerKind::kApache, 5 * 1024),
                      Golden{120, 644400, 43.355255411837923, 8.1411999999999995,
                             63.880388000000004, 0.94326241134751776, 789390, 789390, 0,
                             16, 147, 735, 147, 8, 1332, 154376538});
}

TEST(GoldenTest, Fig03FlashLite5k) {
  ExpectMatchesGolden(RunSingleFileSmoke(ServerKind::kFlashLite, 5 * 1024),
                      Golden{120, 644400, 136.42335189254055, 1.2596639999999999,
                             45.250067999999999, 0.94482758620689655, 36750, 77710, 139,
                             32, 294, 735, 147, 8, 1332, 71277848});
}

TEST(GoldenTest, Fig03Flash50k) {
  ExpectMatchesGolden(RunSingleFileSmoke(ServerKind::kFlash, 50 * 1024),
                      Golden{120, 6174000, 228.789535120713, 14.41, 83.286567000000005,
                             0.94405594405594406, 7563150, 7563150, 0, 104, 147, 5439,
                             147, 8, 6036, 280757067});
}

TEST(GoldenTest, Fig03FlashLite50k) {
  ExpectMatchesGolden(RunSingleFileSmoke(ServerKind::kFlashLite, 50 * 1024),
                      Golden{120, 6174000, 337.62306893012567, 9.6449269999999991,
                             82.218368999999996, 0.94405594405594406, 36750, 446350, 139,
                             144, 294, 5439, 147, 8, 6036, 197331394});
}

TEST(GoldenTest, Fig05FlashCgi20k) {
  ExpectMatchesGolden(
      RunCgiSmoke(ServerKind::kFlash, 20 * 1024, iolhttp::CgiTransport::kSimulatedPipe),
      Golden{120, 2487600, 109.41724627985322, 12.103327999999999, 12.479328000000001, 0,
             9068430, 3047310, 0, 0, 441, 2352, 147, 0, 3088, 222859312});
}

TEST(GoldenTest, Fig05LiteCgi20k) {
  ExpectMatchesGolden(
      RunCgiSmoke(ServerKind::kFlashLite, 20 * 1024, iolhttp::CgiTransport::kSimulatedPipe),
      Golden{120, 2487600, 213.36952735596165, 6.2233280000000004, 6.4433280000000002, 0,
             57230, 57230, 146, 48, 441, 2352, 147, 0, 3088, 115227989});
}

TEST(GoldenTest, Fig05LiteCgiShm20k) {
  // The real shared-memory transport: byte-identical responses, same event
  // count, marginally different instants (descriptor staging costs).
  ExpectMatchesGolden(
      RunCgiSmoke(ServerKind::kFlashLite, 20 * 1024, iolhttp::CgiTransport::kShmRing),
      Golden{120, 2487600, 213.31155742122181, 6.2250319999999997, 6.4450320000000003, 0,
             57230, 57230, 146, 48, 441, 2352, 147, 0, 3088, 115259300});
}

}  // namespace
