// Unit and property tests for the buffer aggregate ADT (Section 3.1,
// Figure 1): mutation by pointer manipulation over immutable buffers.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "src/iolite/aggregate.h"
#include "src/iolite/buffer_pool.h"
#include "src/simos/rng.h"
#include "src/simos/sim_context.h"
#include "tests/test_util.h"

namespace {

using iolite::Aggregate;
using iolite::BufferPool;
using iolite::BufferRef;
using iolite::Slice;
using iolsim::SimContext;

class AggregateTest : public ::testing::Test {
 protected:
  AggregateTest() : pool_(&ctx_, "test", iolsim::kKernelDomain) {}

  Aggregate Agg(const std::string& s) { return ioltest::AggFrom(&pool_, s); }

  SimContext ctx_;
  BufferPool pool_;
};

TEST_F(AggregateTest, EmptyAggregate) {
  Aggregate a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.slice_count(), 0u);
  EXPECT_EQ(a.ToString(), "");
}

TEST_F(AggregateTest, FromBufferCoversWholeContents) {
  Aggregate a = Agg("hello world");
  EXPECT_EQ(a.size(), 11u);
  EXPECT_EQ(a.slice_count(), 1u);
  EXPECT_EQ(a.ToString(), "hello world");
}

TEST_F(AggregateTest, AppendConcatenatesWithoutTouchingData) {
  Aggregate a = Agg("hello ");
  Aggregate b = Agg("world");
  uint64_t copied = ctx_.stats().bytes_copied;
  a.Append(b);
  EXPECT_EQ(a.ToString(), "hello world");
  EXPECT_EQ(a.slice_count(), 2u);
  EXPECT_EQ(ctx_.stats().bytes_copied, copied);  // Pointer manipulation only.
}

TEST_F(AggregateTest, PrependPutsDataFirst) {
  Aggregate a = Agg("world");
  a.Prepend(Agg("hello "));
  EXPECT_EQ(a.ToString(), "hello world");
}

TEST_F(AggregateTest, TruncateKeepsPrefix) {
  Aggregate a = Agg("hello");
  a.Append(Agg(" world"));
  a.Truncate(8);
  EXPECT_EQ(a.ToString(), "hello wo");
  a.Truncate(100);  // Beyond size: no-op.
  EXPECT_EQ(a.size(), 8u);
  a.Truncate(0);
  EXPECT_TRUE(a.empty());
}

TEST_F(AggregateTest, TruncateAtSliceBoundaryDropsWholeSlices) {
  Aggregate a = Agg("abc");
  a.Append(Agg("def"));
  a.Truncate(3);
  EXPECT_EQ(a.slice_count(), 1u);
  EXPECT_EQ(a.ToString(), "abc");
}

TEST_F(AggregateTest, DropFrontRemovesPrefix) {
  Aggregate a = Agg("hello");
  a.Append(Agg(" world"));
  a.DropFront(6);
  EXPECT_EQ(a.ToString(), "world");
  a.DropFront(100);
  EXPECT_TRUE(a.empty());
}

TEST_F(AggregateTest, SplitOffReturnsTail) {
  Aggregate a = Agg("hello world");
  Aggregate tail = a.SplitOff(5);
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_EQ(tail.ToString(), " world");
}

TEST_F(AggregateTest, SplitAtZeroAndEnd) {
  Aggregate a = Agg("abc");
  Aggregate tail = a.SplitOff(0);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(tail.ToString(), "abc");
  Aggregate tail2 = tail.SplitOff(3);
  EXPECT_EQ(tail.ToString(), "abc");
  EXPECT_TRUE(tail2.empty());
}

TEST_F(AggregateTest, RangeSharesBuffers) {
  Aggregate a = Agg("hello world");
  Aggregate mid = a.Range(3, 5);
  EXPECT_EQ(mid.ToString(), "lo wo");
  // Same underlying buffer, not a copy.
  EXPECT_EQ(mid.slices()[0].buffer().get(), a.slices()[0].buffer().get());
}

TEST_F(AggregateTest, ByteAtWalksSlices) {
  Aggregate a = Agg("abc");
  a.Append(Agg("def"));
  EXPECT_EQ(a.ByteAt(0), 'a');
  EXPECT_EQ(a.ByteAt(2), 'c');
  EXPECT_EQ(a.ByteAt(3), 'd');
  EXPECT_EQ(a.ByteAt(5), 'f');
}

TEST_F(AggregateTest, ContentEqualsIgnoresSliceStructure) {
  Aggregate a = Agg("hello world");
  Aggregate b = Agg("hello ");
  b.Append(Agg("world"));
  EXPECT_TRUE(a.ContentEquals(b));
  EXPECT_TRUE(b.ContentEquals(a));
  Aggregate c = Agg("hello worlD");
  EXPECT_FALSE(a.ContentEquals(c));
}

TEST_F(AggregateTest, ReaderYieldsContiguousRuns) {
  Aggregate a = Agg("abc");
  a.Append(Agg("defgh"));
  Aggregate::Reader r = a.NewReader();
  ASSERT_FALSE(r.AtEnd());
  EXPECT_EQ(std::string(r.data(), r.run_length()), "abc");
  r.Skip(3);
  EXPECT_EQ(std::string(r.data(), r.run_length()), "defgh");
  r.Skip(5);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(r.position(), 8u);
}

TEST_F(AggregateTest, ReaderSkipsAcrossSlices) {
  Aggregate a = Agg("abc");
  a.Append(Agg("def"));
  Aggregate::Reader r = a.NewReader();
  r.Skip(4);
  EXPECT_EQ(std::string(r.data(), r.run_length()), "ef");
}

TEST_F(AggregateTest, SlicesHoldBufferReferences) {
  BufferRef b = ioltest::BufferFrom(&pool_, "shared");
  Aggregate a = Aggregate::FromBuffer(b);
  Aggregate copy = a;
  EXPECT_EQ(b->refcount(), 3);  // b + a's slice + copy's slice.
  a.Clear();
  EXPECT_EQ(b->refcount(), 2);
}

TEST_F(AggregateTest, SnapshotSurvivesSourceMutation) {
  Aggregate a = Agg("hello world");
  Aggregate snapshot = a.Range(0, 5);
  a.DropFront(8);
  a.Truncate(1);
  EXPECT_EQ(snapshot.ToString(), "hello");  // Immutable data, stable view.
}

TEST_F(AggregateTest, OverlappingSlicesWithinOneBuffer) {
  BufferRef b = ioltest::BufferFrom(&pool_, "abcdef");
  Aggregate a;
  a.Append(Slice(b, 0, 4));  // "abcd"
  a.Append(Slice(b, 2, 4));  // "cdef" — overlaps; legal per Section 3.3.
  EXPECT_EQ(a.ToString(), "abcdcdef");
}

// --- Property test: random op sequences against a reference string ---------

class AggregatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregatePropertyTest, MatchesReferenceModel) {
  SimContext ctx;
  BufferPool pool(&ctx, "prop", iolsim::kKernelDomain);
  iolsim::Rng rng(GetParam());

  Aggregate agg;
  std::string model;
  for (int step = 0; step < 200; ++step) {
    switch (rng.NextBelow(6)) {
      case 0: {  // Append fresh data.
        size_t n = 1 + rng.NextBelow(64);
        std::string data;
        for (size_t i = 0; i < n; ++i) {
          data.push_back(static_cast<char>('a' + rng.NextBelow(26)));
        }
        agg.Append(ioltest::AggFrom(&pool, data));
        model += data;
        break;
      }
      case 1: {  // Prepend fresh data.
        size_t n = 1 + rng.NextBelow(32);
        std::string data(n, static_cast<char>('A' + rng.NextBelow(26)));
        agg.Prepend(ioltest::AggFrom(&pool, data));
        model = data + model;
        break;
      }
      case 2: {  // Truncate.
        if (model.empty()) {
          break;
        }
        size_t at = rng.NextBelow(model.size() + 1);
        agg.Truncate(at);
        model.resize(at);
        break;
      }
      case 3: {  // DropFront.
        if (model.empty()) {
          break;
        }
        size_t n = rng.NextBelow(model.size() + 1);
        agg.DropFront(n);
        model.erase(0, n);
        break;
      }
      case 4: {  // SplitOff and re-append (content-preserving).
        if (model.empty()) {
          break;
        }
        size_t at = rng.NextBelow(model.size() + 1);
        Aggregate tail = agg.SplitOff(at);
        agg.Append(tail);
        break;
      }
      case 5: {  // Range copy equals substring.
        if (model.empty()) {
          break;
        }
        size_t off = rng.NextBelow(model.size());
        size_t len = rng.NextBelow(model.size() - off + 1);
        EXPECT_EQ(agg.Range(off, len).ToString(), model.substr(off, len));
        break;
      }
    }
    ASSERT_EQ(agg.size(), model.size()) << "step " << step;
  }
  EXPECT_EQ(agg.ToString(), model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregatePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
