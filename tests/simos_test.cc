// Unit tests for the simulated-OS substrate: clock, event queue, resources,
// cost model, memory accounting and the VM system.

#include <gtest/gtest.h>

#include <vector>

#include "src/simos/cost_model.h"
#include "src/simos/event_queue.h"
#include "src/simos/memory_model.h"
#include "src/simos/rng.h"
#include "src/simos/sim_context.h"
#include "src/simos/vm.h"

namespace {

using iolsim::CostModel;
using iolsim::CostParams;
using iolsim::EventQueue;
using iolsim::kMicrosecond;
using iolsim::kSecond;
using iolsim::MemoryModel;
using iolsim::Resource;
using iolsim::SimContext;
using iolsim::SimTime;
using iolsim::VirtualClock;

TEST(VirtualClockTest, StartsAtZeroAndAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.Advance(100);
  EXPECT_EQ(clock.now(), 100);
  clock.Advance(-5);  // Negative deltas ignored.
  EXPECT_EQ(clock.now(), 100);
  clock.AdvanceTo(50);  // Backwards jumps ignored.
  EXPECT_EQ(clock.now(), 100);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.now(), 500);
}

TEST(EventQueueTest, DispatchesInTimeOrder) {
  VirtualClock clock;
  EventQueue q(&clock);
  std::vector<int> order;
  q.ScheduleAt(300, [&] { order.push_back(3); });
  q.ScheduleAt(100, [&] { order.push_back(1); });
  q.ScheduleAt(200, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), 300);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  VirtualClock clock;
  EventQueue q(&clock);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(42, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, ScheduledInPastRunsNow) {
  VirtualClock clock;
  clock.Advance(1000);
  EventQueue q(&clock);
  bool ran = false;
  q.ScheduleAt(10, [&] { ran = true; });
  q.RunOne();
  EXPECT_TRUE(ran);
  EXPECT_EQ(clock.now(), 1000);  // No time travel backwards.
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  VirtualClock clock;
  EventQueue q(&clock);
  int count = 0;
  for (SimTime t = 100; t <= 1000; t += 100) {
    q.ScheduleAt(t, [&] { ++count; });
  }
  uint64_t dispatched = q.RunUntil(500);
  EXPECT_EQ(dispatched, 5u);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(clock.now(), 500);
  EXPECT_EQ(q.size(), 5u);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  VirtualClock clock;
  EventQueue q(&clock);
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) {
      q.ScheduleAfter(10, step);
    }
  };
  q.ScheduleAt(0, step);
  q.RunAll();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(clock.now(), 40);
}

TEST(ResourceTest, FifoQueueing) {
  VirtualClock clock;
  Resource r(&clock);
  // Two jobs back to back: the second queues behind the first.
  EXPECT_EQ(r.Acquire(100), 100);
  EXPECT_EQ(r.Acquire(50), 150);
  EXPECT_EQ(r.busy_time(), 150);
}

TEST(ResourceTest, AcquireAfterRespectsEarliestStart) {
  VirtualClock clock;
  Resource r(&clock);
  EXPECT_EQ(r.AcquireAfter(1000, 10), 1010);
  // Resource is busy until 1010, so an earlier-eligible job still queues.
  EXPECT_EQ(r.AcquireAfter(500, 10), 1020);
}

TEST(ResourceTest, IdleGapsDoNotAccumulate) {
  VirtualClock clock;
  Resource r(&clock);
  r.Acquire(100);
  clock.Advance(1000);
  // Starts at now (1000), not at 100.
  EXPECT_EQ(r.Acquire(10), 1010);
}

TEST(CostModelTest, CopyCostScalesLinearly) {
  CostModel cost;
  EXPECT_EQ(cost.CopyCost(0), 0);
  SimTime one_mb = cost.CopyCost(1 << 20);
  SimTime two_mb = cost.CopyCost(2 << 20);
  EXPECT_NEAR(static_cast<double>(two_mb), 2.0 * static_cast<double>(one_mb),
              static_cast<double>(one_mb) * 0.01);
  // 1 MB at the configured copy rate.
  EXPECT_NEAR(iolsim::ToSeconds(one_mb), (1 << 20) / cost.params().copy_bytes_per_sec, 1e-4);
}

TEST(CostModelTest, ChecksumCheaperThanCopy) {
  CostModel cost;
  EXPECT_LT(cost.ChecksumCost(100000), cost.CopyCost(100000));
}

TEST(CostModelTest, PacketCostCountsMssSegments) {
  CostModel cost;
  const CostParams& p = cost.params();
  EXPECT_EQ(cost.PacketProcessingCost(1), p.per_packet_cost);
  EXPECT_EQ(cost.PacketProcessingCost(p.mtu_bytes), p.per_packet_cost);
  EXPECT_EQ(cost.PacketProcessingCost(p.mtu_bytes + 1), 2 * p.per_packet_cost);
  EXPECT_EQ(cost.PacketProcessingCost(10 * p.mtu_bytes), 10 * p.per_packet_cost);
}

TEST(CostModelTest, WireTimeUsesAggregateNicRate) {
  CostParams p;
  p.nic_count = 5;
  p.nic_bits_per_sec = 100e6;
  p.wire_efficiency = 0.8;
  CostModel cost(p);
  // 400 Mb/s effective: 50 MB takes one second.
  EXPECT_NEAR(iolsim::ToSeconds(cost.WireTime(50 * 1000 * 1000)), 1.0, 0.01);
}

TEST(CostModelTest, DiskCostHasSeekAndTransfer) {
  CostModel cost;
  SimTime small = cost.DiskAccessCost(512);
  // Dominated by positioning.
  EXPECT_GT(small, 8 * kMicrosecond * 1000);
  // Large transfers are split into max-transfer pieces, each paying a seek.
  SimTime big = cost.DiskAccessCost(256 * 1024);
  EXPECT_GT(big, 4 * small / 2);
}

TEST(CostModelTest, PagesForRoundsUp) {
  CostModel cost;
  EXPECT_EQ(cost.PagesFor(1), 1);
  EXPECT_EQ(cost.PagesFor(4096), 1);
  EXPECT_EQ(cost.PagesFor(4097), 2);
  EXPECT_EQ(cost.PagesFor(0), 0);
}

TEST(MemoryModelTest, ReserveReleaseAndBudget) {
  MemoryModel mem(128ull << 20);
  EXPECT_EQ(mem.CacheBudget(), 128ull << 20);
  mem.Reserve("kernel", 24ull << 20);
  mem.Reserve("sockets", 4ull << 20);
  EXPECT_EQ(mem.used(), 28ull << 20);
  EXPECT_EQ(mem.CacheBudget(), 100ull << 20);
  mem.Release("sockets", 4ull << 20);
  EXPECT_EQ(mem.CacheBudget(), 104ull << 20);
}

TEST(MemoryModelTest, OvercommitYieldsZeroBudget) {
  MemoryModel mem(10 << 20);
  EXPECT_FALSE(mem.Reserve("huge", 20 << 20));
  EXPECT_EQ(mem.CacheBudget(), 0u);
}

TEST(MemoryModelTest, ReleaseClampsAtZero) {
  MemoryModel mem(1 << 20);
  mem.Reserve("a", 100);
  mem.Release("a", 500);
  EXPECT_EQ(mem.reservation("a"), 0u);
}

TEST(RngTest, DeterministicPerSeed) {
  iolsim::Rng a(42);
  iolsim::Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  iolsim::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, LognormalPositive) {
  iolsim::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.NextLognormal(0.0, 1.4), 0.0);
  }
}

// --- VM system --------------------------------------------------------------

class VmTest : public ::testing::Test {
 protected:
  SimContext ctx_;
};

TEST_F(VmTest, KernelHasImplicitAccess) {
  iolsim::ChunkId c = ctx_.vm().AllocateChunk(iolsim::kKernelDomain);
  EXPECT_TRUE(ctx_.vm().CanRead(c, iolsim::kKernelDomain));
  EXPECT_TRUE(ctx_.vm().CanWrite(c, iolsim::kKernelDomain));
}

TEST_F(VmTest, OtherDomainsStartWithoutAccess) {
  iolsim::DomainId d = ctx_.vm().CreateDomain("proc");
  iolsim::ChunkId c = ctx_.vm().AllocateChunk(iolsim::kKernelDomain);
  EXPECT_FALSE(ctx_.vm().CanRead(c, d));
  EXPECT_FALSE(ctx_.vm().CanWrite(c, d));
}

TEST_F(VmTest, EnsureReadableChargesOnlyFirstTime) {
  iolsim::DomainId d = ctx_.vm().CreateDomain("proc");
  iolsim::ChunkId c = ctx_.vm().AllocateChunk(iolsim::kKernelDomain);
  SimTime before = ctx_.clock().now();
  EXPECT_TRUE(ctx_.vm().EnsureReadable(c, d));  // Cold: mapping work.
  SimTime cold = ctx_.clock().now() - before;
  EXPECT_GT(cold, 0);
  before = ctx_.clock().now();
  EXPECT_FALSE(ctx_.vm().EnsureReadable(c, d));  // Warm: mapping persists.
  EXPECT_EQ(ctx_.clock().now(), before);
  EXPECT_TRUE(ctx_.vm().CanRead(c, d));
}

TEST_F(VmTest, ProducerGetsWriteAccessOnAllocation) {
  iolsim::DomainId d = ctx_.vm().CreateDomain("producer");
  iolsim::ChunkId c = ctx_.vm().AllocateChunk(d);
  EXPECT_TRUE(ctx_.vm().CanWrite(c, d));
  EXPECT_TRUE(ctx_.vm().CanRead(c, d));
}

TEST_F(VmTest, WriteToggleRevokesAndRestores) {
  iolsim::DomainId d = ctx_.vm().CreateDomain("producer");
  iolsim::ChunkId c = ctx_.vm().AllocateChunk(d);
  ctx_.vm().SetWritable(c, d, false);
  EXPECT_FALSE(ctx_.vm().CanWrite(c, d));
  EXPECT_TRUE(ctx_.vm().CanRead(c, d));  // Read survives the seal.
  ctx_.vm().SetWritable(c, d, true);
  EXPECT_TRUE(ctx_.vm().CanWrite(c, d));
  EXPECT_EQ(ctx_.stats().page_protect_ops, 2u);
}

TEST_F(VmTest, KernelWriteToggleIsFree) {
  iolsim::ChunkId c = ctx_.vm().AllocateChunk(iolsim::kKernelDomain);
  SimTime before = ctx_.clock().now();
  ctx_.vm().SetWritable(c, iolsim::kKernelDomain, false);
  ctx_.vm().SetWritable(c, iolsim::kKernelDomain, true);
  EXPECT_EQ(ctx_.clock().now(), before);  // Trusted producer: permanent write.
  EXPECT_TRUE(ctx_.vm().CanWrite(c, iolsim::kKernelDomain));
}

TEST_F(VmTest, DestroyDomainDropsMappings) {
  iolsim::DomainId d = ctx_.vm().CreateDomain("proc");
  iolsim::ChunkId c = ctx_.vm().AllocateChunk(iolsim::kKernelDomain);
  ctx_.vm().EnsureReadable(c, d);
  ctx_.vm().DestroyDomain(d);
  EXPECT_FALSE(ctx_.vm().CanRead(c, d));
}

TEST_F(VmTest, FreeChunkInvalidates) {
  iolsim::ChunkId c = ctx_.vm().AllocateChunk(iolsim::kKernelDomain);
  ctx_.vm().FreeChunk(c);
  EXPECT_FALSE(ctx_.vm().ChunkExists(c));
  EXPECT_FALSE(ctx_.vm().CanRead(c, iolsim::kKernelDomain));
}

TEST_F(VmTest, TallyModeAccumulatesInsteadOfAdvancing) {
  iolsim::Tally tally;
  iolsim::DomainId d = ctx_.vm().CreateDomain("proc");
  iolsim::ChunkId c = ctx_.vm().AllocateChunk(iolsim::kKernelDomain);
  SimTime before = ctx_.clock().now();
  {
    iolsim::TallyScope scope(&ctx_, &tally);
    ctx_.vm().EnsureReadable(c, d);
  }
  EXPECT_EQ(ctx_.clock().now(), before);
  EXPECT_GT(tally.cpu, 0);
}

}  // namespace
