// Property tests for the multi-tenant QoS plane (src/qos).
//
// The plane's core guarantees, attacked directly:
//  * Determinism: a single tenant (or equal weights over interleaved
//    uniform jobs) dispatches in exact FIFO order, so attaching the fair
//    scheduler to a single-tenant machine is byte-identical to the plain
//    resource — the golden determinism contract.
//  * Fairness: under continuous backlog, dispatched service converges to
//    the weight ratio (within 1% over a long run).
//  * Liveness: the bounded-wait guard promotes a starving tenant.
//  * Rate limiting: the GCRA token bucket grants byte-identical timestamps
//    on a replayed arrival sequence, with classic burst-then-sustained
//    shape.
//  * Isolation: cache partitioning never evicts a tenant within its
//    reservation while another tenant is over its own.
//  * End to end: a full adversarial-mix experiment with WFQ, partitions
//    and a throttle attached is run-twice byte-identical.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/driver/experiment.h"
#include "src/driver/tenant_mix.h"
#include "src/qos/fair_queue.h"
#include "src/qos/policy.h"
#include "src/qos/token_bucket.h"
#include "src/simos/rng.h"
#include "src/system/system.h"

namespace iolqos {
namespace {

// --- FairQueue: the discipline in isolation --------------------------------

TEST(FairQueueTest, SingleTenantAnyPatternIsFifo) {
  FairQueue q;
  iolsim::Rng rng(1);
  // Arbitrary service times and arrival instants: one tenant must still
  // dispatch in exact push order.
  std::vector<uint64_t> pushed;
  iolsim::SimTime now = 0;
  for (uint64_t i = 0; i < 500; ++i) {
    now += static_cast<iolsim::SimTime>(rng.NextBelow(1000));
    q.Push(/*t=*/1, now, /*service=*/1 + static_cast<iolsim::SimTime>(rng.NextBelow(5000)),
           /*token=*/i);
    pushed.push_back(i);
    // Interleave pops so virtual time advances mid-stream.
    if (i % 3 == 2) {
      EXPECT_EQ(q.Pop(now).token, pushed[i / 3]);
    }
  }
  size_t next = 500 / 3;
  while (!q.empty()) {
    EXPECT_EQ(q.Pop(now).token, pushed[next++]);
  }
  EXPECT_EQ(next, pushed.size());
}

TEST(FairQueueTest, EqualWeightsInterleavedUniformIsFifo) {
  FairQueue q;
  q.SetWeight(1, 4);
  q.SetWeight(2, 4);
  // Interleaved arrivals, uniform service, equal weights: start tags tie
  // per round and the deterministic seq tie-break yields exact FIFO — the
  // "equal weights degrade to the baseline" contract.
  constexpr iolsim::SimTime kService = 1000;
  for (uint64_t i = 0; i < 400; ++i) {
    q.Push(static_cast<TenantId>(1 + (i % 2)), /*now=*/0, kService, i);
  }
  for (uint64_t i = 0; i < 400; ++i) {
    EXPECT_EQ(q.Pop(0).token, i);
  }
}

TEST(FairQueueTest, WeightedShareWithinOnePercent) {
  FairQueue q;
  q.SetWeight(1, 2);
  q.SetWeight(2, 1);
  // Continuous backlog: both lanes stay non-empty for the whole run, so
  // dispatched service must track the 2:1 weights.
  constexpr iolsim::SimTime kService = 1000;
  constexpr int kJobs = 6000;
  for (int i = 0; i < kJobs; ++i) {
    q.Push(1, 0, kService, i);
    q.Push(2, 0, kService, i);
  }
  // Pop two thirds of the total: both lanes must still be backlogged at the
  // end for the share property to be exact.
  for (int i = 0; i < kJobs; ++i) {
    q.Pop(0);
  }
  ASSERT_FALSE(q.empty());
  double ratio = static_cast<double>(q.dispatched_service(1)) /
                 static_cast<double>(q.dispatched_service(2));
  EXPECT_NEAR(ratio, 2.0, 0.02);
  EXPECT_EQ(q.promotions(), 0u);
}

TEST(FairQueueTest, StarvationGuardPromotesOldestPastTagOrder) {
  FairQueue q;
  q.SetWeight(1, 1024);  // Favored tenant.
  q.SetWeight(2, 1);     // Starved tenant.
  constexpr iolsim::SimTime kService = 1000;

  // Tenant 2 consumes service once: its finish tag jumps ~1M weighted ns
  // ahead, so its next job's start tag loses to every fresh tenant-1 job
  // until virtual time catches up — the starvation shape.
  q.Push(2, 0, kService, 100);
  ASSERT_EQ(q.Pop(0).token, 100u);
  q.Push(2, 0, kService, 101);

  // Without the guard, a steady tenant-1 stream starves job 101.
  iolsim::SimTime now = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    now += kService;
    q.Push(1, now, kService, i);
    ASSERT_EQ(q.Pop(now).token, i) << "tenant 1 should win on tags alone";
  }
  EXPECT_EQ(q.promotions(), 0u);

  // Arm the guard: the next pop past the bound promotes the old job even
  // though its start tag still loses.
  q.set_max_wait(10 * kService);
  now += kService;
  q.Push(1, now, kService, 999);
  FairQueue::Job job = q.Pop(now);
  EXPECT_EQ(job.token, 101u);
  EXPECT_TRUE(job.promoted);
  EXPECT_EQ(q.promotions(), 1u);
  EXPECT_EQ(q.Pop(now).token, 999u);
}

// --- TokenBucket: GCRA determinism -----------------------------------------

TEST(TokenBucketTest, BurstThenSustainedRate) {
  TokenBucket bucket(/*tokens_per_sec=*/1000.0, /*burst_tokens=*/3.0);
  const iolsim::SimTime period = bucket.period();
  EXPECT_EQ(period, iolsim::kMillisecond);
  // Three grants pass back to back after idle; the fourth and fifth pay the
  // sustained period.
  EXPECT_EQ(bucket.ReserveAt(0), 0);
  EXPECT_EQ(bucket.ReserveAt(0), 0);
  EXPECT_EQ(bucket.ReserveAt(0), 0);
  EXPECT_EQ(bucket.ReserveAt(0), period);
  EXPECT_EQ(bucket.ReserveAt(0), 2 * period);
  // After a long idle the burst allowance is back.
  iolsim::SimTime later = 100 * period;
  EXPECT_EQ(bucket.ReserveAt(later), later);
  EXPECT_EQ(bucket.ReserveAt(later), later);
}

TEST(TokenBucketTest, ReplayedArrivalsGrantIdenticalTimestamps) {
  iolsim::Rng rng(7);
  std::vector<iolsim::SimTime> arrivals;
  iolsim::SimTime now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += static_cast<iolsim::SimTime>(rng.NextBelow(3 * iolsim::kMillisecond));
    arrivals.push_back(now);
  }
  TokenBucket bucket(/*tokens_per_sec=*/750.0, /*burst_tokens=*/8.0);
  std::vector<iolsim::SimTime> first;
  for (iolsim::SimTime t : arrivals) {
    first.push_back(bucket.ReserveAt(t));
  }
  bucket.Reset();
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(bucket.ReserveAt(arrivals[i]), first[i]) << "grant " << i;
  }
}

// --- FairScheduler: the discipline on a Resource ---------------------------

// Issues `n` AcquireAsync calls with per-call service times and returns the
// completion timestamps in completion order.
std::vector<iolsim::SimTime> DriveResource(iolsim::SimContext* ctx,
                                           iolsim::Resource* resource, int n,
                                           uint64_t seed) {
  std::vector<iolsim::SimTime> completions;
  iolsim::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    iolsim::SimTime service = 1 + static_cast<iolsim::SimTime>(rng.NextBelow(5000));
    resource->AcquireAsync(&ctx->events(), service, [ctx, &completions] {
      completions.push_back(ctx->clock().now());
    });
    if (i % 4 == 3) {
      ctx->events().RunAll();  // Mix queued-behind and idle-start admissions.
    }
  }
  ctx->events().RunAll();
  return completions;
}

TEST(FairSchedulerTest, SingleTenantAttachedMatchesDetachedExactly) {
  std::vector<iolsim::SimTime> detached;
  {
    iolsim::SimContext ctx;
    detached = DriveResource(&ctx, &ctx.cpu(), 200, 99);
  }
  std::vector<iolsim::SimTime> attached;
  {
    iolsim::SimContext ctx;
    FairScheduler sched(&ctx, &ctx.cpu());
    attached = DriveResource(&ctx, &ctx.cpu(), 200, 99);
    EXPECT_EQ(sched.admitted(), 200u);
    EXPECT_EQ(sched.backlog(), 0u);
  }
  EXPECT_EQ(attached, detached);
}

TEST(FairSchedulerTest, WorkConservingUnderWeights) {
  // N uniform jobs over a 2-unit resource finish at ceil(N/2) * service no
  // matter how the weights reorder them: a unit never idles with a backlog.
  constexpr iolsim::SimTime kService = 1000;
  constexpr int kPerTenant = 40;
  iolsim::CostParams params;
  params.cpu_count = 2;
  iolsim::SimContext ctx(params);
  QosPolicy policy;
  TenantId a = policy.Register("a", 8);
  TenantId b = policy.Register("b", 1);
  FairScheduler* sched = policy.AttachFairQueue(&ctx, &ctx.cpu());
  int done = 0;
  for (int i = 0; i < kPerTenant; ++i) {
    ctx.set_active_tenant(a);
    ctx.cpu().AcquireAsync(&ctx.events(), kService, [&done] { ++done; });
    ctx.set_active_tenant(b);
    ctx.cpu().AcquireAsync(&ctx.events(), kService, [&done] { ++done; });
  }
  ctx.events().RunAll();
  EXPECT_EQ(done, 2 * kPerTenant);
  EXPECT_EQ(ctx.clock().now(), kPerTenant * kService);
  EXPECT_EQ(sched->dispatched(), static_cast<uint64_t>(2 * kPerTenant));
  // The favored tenant's jobs all finished in the first part of the run:
  // its last dispatch cannot come after the light tenant's backlog drains.
  EXPECT_GT(sched->queue().dispatched_service(a), 0);
}

// --- Cache partitioning ----------------------------------------------------

TEST(CachePartitionTest, ReservedShareIsNeverStolen) {
  iolsys::SystemOptions options;
  options.policy = iolsys::SystemOptions::Policy::kPlainLru;
  iolsys::System sys(options);
  QosPolicy policy;
  TenantId hot = policy.Register("hot", 1);
  TenantId scan = policy.Register("scan", 1);
  CachePlan plan;
  plan.total_bytes = 256 * 1024;
  plan.SetReserved(hot, 128 * 1024);
  sys.cache().AttachQos(&policy);
  sys.cache().SetPartitions(&plan);

  // Hot tenant fills (most of) its reservation.
  std::vector<iolfs::FileId> hot_files;
  sys.ctx().set_active_tenant(hot);
  for (int i = 0; i < 12; ++i) {
    iolfs::FileId f = sys.fs().CreateFile("hot" + std::to_string(i), 8 * 1024);
    hot_files.push_back(f);
    sys.cache().Insert(f, 0, iolite::Aggregate::FromBuffer(
                                 sys.fs().ReadFromDisk(f, 0, 8 * 1024)));
  }
  uint64_t hot_bytes = sys.cache().tenant_bytes(hot);
  EXPECT_GE(hot_bytes, 12u * 8 * 1024);

  // The scan blows far past the budget; enforcement must take every victim
  // from the scan's own entries.
  sys.ctx().set_active_tenant(scan);
  for (int i = 0; i < 64; ++i) {
    iolfs::FileId f = sys.fs().CreateFile("scan" + std::to_string(i), 16 * 1024);
    sys.cache().Insert(f, 0, iolite::Aggregate::FromBuffer(
                                 sys.fs().ReadFromDisk(f, 0, 16 * 1024)));
    sys.cache().EnforceBudget(plan.total_bytes);
  }
  EXPECT_EQ(sys.cache().tenant_bytes(hot), hot_bytes);
  EXPECT_LE(sys.cache().tenant_bytes(scan), plan.total_bytes - hot_bytes);
  EXPECT_EQ(policy.cache_counters(hot).evictions, 0u);
  EXPECT_GT(policy.cache_counters(scan).evictions, 0u);

  // Every hot entry still answers, and the lookups land on hot's counter.
  sys.ctx().set_active_tenant(hot);
  for (iolfs::FileId f : hot_files) {
    EXPECT_TRUE(sys.cache().Lookup(f, 0, 8 * 1024).has_value());
  }
  EXPECT_EQ(policy.cache_counters(hot).hits, static_cast<uint64_t>(hot_files.size()));
  EXPECT_EQ(policy.cache_counters(hot).misses, 0u);
}

// --- End to end: adversarial mix, run-twice parity -------------------------

struct MiniMixRun {
  std::vector<ioldrv::RequestRecord> records;
  ioldrv::ExperimentResult result;
};

MiniMixRun RunMiniMix() {
  iolsys::SystemOptions options;
  options.policy = iolsys::SystemOptions::Policy::kPlainLru;
  auto sys = std::make_unique<iolsys::System>(options);

  std::vector<iolfs::FileId> hot_files;
  for (int i = 0; i < 8; ++i) {
    hot_files.push_back(sys->fs().CreateFile("hot" + std::to_string(i), 4 * 1024));
  }
  std::vector<iolfs::FileId> scan_files;
  for (int i = 0; i < 32; ++i) {
    scan_files.push_back(sys->fs().CreateFile("scan" + std::to_string(i), 16 * 1024));
  }

  auto hot_rng = std::make_shared<iolsim::Rng>(5);
  auto scan_cursor = std::make_shared<size_t>(0);
  std::vector<ioldrv::TenantWorkloadSpec> specs(2);
  specs[0].name = "hot";
  specs[0].weight = 4;
  specs[0].clients = 3;
  specs[0].cache_reserved_bytes = 48 * 1024;
  specs[0].next_file = [hot_rng, hot_files] {
    return hot_files[hot_rng->NextBelow(hot_files.size())];
  };
  specs[1].name = "scan";
  specs[1].weight = 1;
  specs[1].clients = 3;
  specs[1].throttle_tokens_per_sec = 50;  // 20 ms period: always binds.
  specs[1].throttle_burst = 1;
  specs[1].next_file = [scan_cursor, scan_files] {
    iolfs::FileId f = scan_files[*scan_cursor];
    *scan_cursor = (*scan_cursor + 1) % scan_files.size();
    return f;
  };
  ioldrv::TenantMix mix(specs);

  QosPolicy policy;
  CachePlan plan;
  plan.total_bytes = 96 * 1024;
  mix.Configure(&policy, &plan);
  policy.AttachWfq(&sys->ctx());
  policy.SetStarvationBound(200 * iolsim::kMillisecond);
  sys->cache().AttachQos(&policy);
  sys->cache().SetPartitions(&plan);

  auto server = std::make_unique<iolhttp::FlashLiteServer>(&sys->ctx(), &sys->net(),
                                                           &sys->io(), &sys->runtime());
  ioldrv::ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = 400;
  config.warmup_requests = 50;
  config.cache_budget_bytes = plan.total_bytes;
  config.qos = &policy;
  ioldrv::Experiment experiment(&sys->ctx(), &sys->net(), &sys->cache(), server.get(),
                                config);
  MiniMixRun run;
  run.result = experiment.Run(&mix, [hot_files] { return hot_files[0]; });
  run.records = experiment.telemetry().records();
  return run;
}

TEST(QosExperimentTest, AdversarialMixIsRunTwiceIdentical) {
  MiniMixRun a = RunMiniMix();
  MiniMixRun b = RunMiniMix();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].issue, b.records[i].issue) << "record " << i;
    EXPECT_EQ(a.records[i].admit, b.records[i].admit) << "record " << i;
    EXPECT_EQ(a.records[i].complete, b.records[i].complete) << "record " << i;
    EXPECT_EQ(a.records[i].bytes, b.records[i].bytes) << "record " << i;
    EXPECT_EQ(a.records[i].tenant, b.records[i].tenant) << "record " << i;
  }
  EXPECT_EQ(a.result.megabits_per_sec, b.result.megabits_per_sec);

  // The per-tenant breakdown is present, named, and carries the per-tenant
  // hit rate (the aggregate-only reporting fix).
  ASSERT_EQ(a.result.tenants.size(), 2u);
  EXPECT_EQ(a.result.tenants[0].name, "hot");
  EXPECT_EQ(a.result.tenants[1].name, "scan");
  EXPECT_GT(a.result.tenants[0].requests, 0u);
  EXPECT_GT(a.result.tenants[1].requests, 0u);
  EXPECT_GT(a.result.tenants[0].cache_hit_rate, a.result.tenants[1].cache_hit_rate);
}

TEST(QosExperimentTest, ThrottleDelaysAdmissions) {
  MiniMixRun run = RunMiniMix();
  // The scan tenant's 50 req/s bucket must have held some arrivals back:
  // admit > issue on a throttled record.
  bool delayed = false;
  for (const ioldrv::RequestRecord& r : run.records) {
    if (r.tenant == 2 && r.admit > r.issue) {
      delayed = true;
      break;
    }
  }
  EXPECT_TRUE(delayed);
}

}  // namespace
}  // namespace iolqos
