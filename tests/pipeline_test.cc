// Tests for the staged request pipeline's scheduler: asynchronous Resource
// acquisition (FIFO fairness, deterministic tie-breaking, multi-unit CPUs),
// admission control (max_concurrent queues, never drops), disk/CPU overlap
// under cold caches, open-loop arrivals, pipelined connections — and the
// allocation-free engine contract: steady-state request turnover on a warm
// cache performs zero heap allocations (counting-allocator tests below).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "src/driver/experiment.h"
#include "src/driver/workload.h"
#include "src/httpd/http_server.h"
#include "src/simos/event_queue.h"
#include "src/simos/inline_function.h"
#include "src/system/system.h"

// Counting allocator: every operator-new in this test binary bumps a
// counter, so tests can assert that a code region allocates exactly zero
// times. Deallocation is left untouched (frees are not the contract).
static std::atomic<uint64_t> g_alloc_count{0};

void* operator new(size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) {
    abort();
  }
  return p;
}
void* operator new[](size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) {
    abort();
  }
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace {

using ioldrv::ClosedLoop;
using ioldrv::Experiment;
using ioldrv::ExperimentConfig;
using ioldrv::ExperimentResult;
using ioldrv::OpenLoopPoisson;
using iolfs::FileId;
using iolhttp::ApacheServer;
using iolhttp::FlashLiteServer;
using iolhttp::FlashServer;
using iolsim::EventQueue;
using iolsim::Resource;
using iolsim::SimTime;
using iolsim::VirtualClock;
using iolsys::System;

// --- Async Resource ----------------------------------------------------------

TEST(AsyncResourceTest, CompletionsFollowAcquisitionOrder) {
  VirtualClock clock;
  EventQueue events(&clock);
  Resource r(&clock);
  std::vector<int> order;
  // Both acquired at t=0; the first caller gets the first slot (FIFO).
  r.AcquireAsync(&events, 100, [&] { order.push_back(1); });
  r.AcquireAsync(&events, 50, [&] { order.push_back(2); });
  events.RunAll();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(clock.now(), 150);
  EXPECT_EQ(r.busy_time(), 150);
}

TEST(AsyncResourceTest, SimultaneousCompletionsAreDeterministic) {
  // Two jobs completing at the same instant dispatch in schedule order —
  // on every run.
  std::string first_trace;
  for (int run = 0; run < 3; ++run) {
    VirtualClock clock;
    EventQueue events(&clock);
    Resource two_cpus(&clock, 2);
    std::string trace;
    for (int i = 0; i < 6; ++i) {
      two_cpus.AcquireAsync(&events, 100, [&trace, i] { trace += static_cast<char>('a' + i); });
    }
    events.RunAll();
    if (run == 0) {
      first_trace = trace;
    } else {
      EXPECT_EQ(trace, first_trace);
    }
  }
  EXPECT_EQ(first_trace, "abcdef");
}

TEST(AsyncResourceTest, MultiUnitServesInParallel) {
  VirtualClock clock;
  EventQueue events(&clock);
  Resource r(&clock, 2);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    r.AcquireAsync(&events, 100, [&] { completions.push_back(clock.now()); });
  }
  events.RunAll();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], 100);  // Units 0 and 1 run the first two jobs...
  EXPECT_EQ(completions[1], 100);
  EXPECT_EQ(completions[2], 200);  // ...the third queues behind the earliest.
  EXPECT_EQ(r.units(), 2);
  EXPECT_EQ(r.busy_time(), 300);
}

TEST(AsyncResourceTest, SyncAndAsyncAcquisitionsShareTheQueue) {
  VirtualClock clock;
  EventQueue events(&clock);
  Resource r(&clock);
  EXPECT_EQ(r.AcquireAfter(0, 100), 100);
  bool ran = false;
  SimTime finish = r.AcquireAsync(&events, 50, [&] { ran = true; });
  EXPECT_EQ(finish, 150);  // Queued behind the sync reservation.
  events.RunAll();
  EXPECT_TRUE(ran);
  EXPECT_EQ(clock.now(), 150);
}

TEST(AsyncResourceTest, ManyUnitHeapMatchesLinearScanSemantics) {
  // 12 units exercises the index-heap path (units > 8): earliest-free unit,
  // lowest index on ties — byte-identical to the old linear scan.
  VirtualClock clock;
  EventQueue events(&clock);
  Resource r(&clock, 12);
  std::vector<SimTime> completions;
  for (int i = 0; i < 30; ++i) {
    r.AcquireAsync(&events, 50 + (i % 3) * 25, [&] { completions.push_back(clock.now()); });
  }
  events.RunAll();
  ASSERT_EQ(completions.size(), 30u);
  // Mirror of the original linear-scan reservation loop.
  std::vector<SimTime> unit_free(12, 0);
  std::vector<SimTime> expected;
  for (int i = 0; i < 30; ++i) {
    size_t best = 0;
    for (size_t u = 1; u < unit_free.size(); ++u) {
      if (unit_free[u] < unit_free[best]) {
        best = u;
      }
    }
    unit_free[best] += 50 + (i % 3) * 25;
    expected.push_back(unit_free[best]);
  }
  std::sort(expected.begin(), expected.end());
  std::vector<SimTime> got = completions;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
  SimTime busy = 0;
  for (int i = 0; i < 30; ++i) {
    busy += 50 + (i % 3) * 25;
  }
  EXPECT_EQ(r.busy_time(), busy);
}

// --- InlineFunction ----------------------------------------------------------

TEST(InlineFunctionTest, MoveTransfersOwnershipAndState) {
  int runs = 0;
  iolsim::InlineCallback a = [&runs] { ++runs; };
  iolsim::InlineCallback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(runs, 1);
}

TEST(InlineFunctionTest, NonTrivialCapturesDestructExactlyOnce) {
  std::shared_ptr<int> token = std::make_shared<int>(7);
  EXPECT_EQ(token.use_count(), 1);
  {
    iolsim::InlineCallback cb = [token] { (void)*token; };
    EXPECT_EQ(token.use_count(), 2);
    iolsim::InlineCallback moved = std::move(cb);
    EXPECT_EQ(token.use_count(), 2);  // Moved, not copied.
    moved();
  }
  EXPECT_EQ(token.use_count(), 1);  // Destroyed with the callback.
}

// --- Zero-allocation steady state --------------------------------------------

namespace zero_alloc {

// Direct-mode loop: one persistent connection, one warm document, repeated
// HandleRequest. After warmup (cache hot, pools at high-water, checksum
// cache at capacity) the loop must not touch the heap at all.
template <typename MakeServerFn>
uint64_t CountWarmLoopAllocs(iolsys::SystemOptions options, MakeServerFn make_server) {
  options.checksum_cache_entries = 64;  // Reach eviction steady state fast.
  iolsys::System sys(options);
  std::unique_ptr<iolhttp::HttpServer> server = make_server(&sys);
  iolfs::FileId f = sys.fs().CreateFile("doc", 5 * 1024);
  iolnet::TcpConnection conn(&sys.net(), server->uses_iolite_sockets());
  conn.Connect();
  for (int i = 0; i < 200; ++i) {  // Warmup: fill caches, grow pools.
    server->HandleRequest(&conn, f);
  }
  uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    server->HandleRequest(&conn, f);
  }
  uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  conn.Close();
  return after - before;
}

}  // namespace zero_alloc

TEST(ZeroAllocTest, WarmFlashRequestLoopAllocatesNothing) {
  iolsys::SystemOptions options;
  options.checksum_cache = false;
  uint64_t allocs = zero_alloc::CountWarmLoopAllocs(options, [](iolsys::System* sys) {
    return std::make_unique<FlashServer>(&sys->ctx(), &sys->net(), &sys->io());
  });
  EXPECT_EQ(allocs, 0u) << "copy-path warm request loop must not touch the heap";
}

TEST(ZeroAllocTest, WarmFlashLiteRequestLoopAllocatesNothing) {
  iolsys::SystemOptions options;
  options.checksum_cache = true;
  options.policy = iolsys::SystemOptions::Policy::kGds;
  uint64_t allocs = zero_alloc::CountWarmLoopAllocs(options, [](iolsys::System* sys) {
    return std::make_unique<FlashLiteServer>(&sys->ctx(), &sys->net(), &sys->io(),
                                             &sys->runtime());
  });
  EXPECT_EQ(allocs, 0u) << "IO-Lite warm request loop (header generations, checksum "
                           "cache churn included) must not touch the heap";
}

TEST(ZeroAllocTest, SteadyStateExperimentTurnoverAllocatesNothing) {
  // Whole-engine version: the same closed-loop experiment at two lengths
  // allocates the same absolute number of times — i.e. per-request turnover
  // (driver lanes, events, transmissions, telemetry) is allocation-free
  // once the population and pools reach steady state.
  auto total_allocs = [](uint64_t requests) {
    iolsys::SystemOptions options;
    options.checksum_cache_entries = 64;
    iolsys::System sys(options);
    FlashServer flash(&sys.ctx(), &sys.net(), &sys.io());
    iolfs::FileId f = sys.fs().CreateFile("doc", 5 * 1024);
    ioldrv::ExperimentConfig config;
    config.persistent_connections = true;
    config.max_requests = requests;
    config.warmup_requests = 500;
    ClosedLoop workload(8);
    Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &flash, config);
    uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    experiment.Run(&workload, [f] { return f; });
    return g_alloc_count.load(std::memory_order_relaxed) - before;
  };
  uint64_t short_run = total_allocs(1000);
  uint64_t long_run = total_allocs(3000);
  // The long run reserves a larger telemetry vector in its single up-front
  // allocation; the *count* of allocations must not grow with requests.
  EXPECT_EQ(short_run, long_run);
}

// --- Multi-CPU scaling -------------------------------------------------------

namespace multi_cpu {

double RunApache(int cpu_count) {
  iolsys::SystemOptions options;
  options.cost.cpu_count = cpu_count;
  System sys(options);
  FileId f = sys.fs().CreateFile("doc", 5 * 1024);
  ApacheServer apache(&sys.ctx(), &sys.net(), &sys.io());
  ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = 1500;
  config.warmup_requests = 50;
  ClosedLoop workload(16);
  Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &apache, config);
  return experiment.Run(&workload, [f] { return f; }).megabits_per_sec;
}

}  // namespace multi_cpu

TEST(MultiCpuTest, SecondCpuNearlyDoublesCpuBoundThroughput) {
  // Apache on small files is CPU-bound (700us of process work per request),
  // so a second CPU should scale throughput close to 2x.
  double one = multi_cpu::RunApache(1);
  double two = multi_cpu::RunApache(2);
  EXPECT_GT(two, one * 1.6);
  EXPECT_LT(two, one * 2.1);
}

TEST(MultiCpuTest, WireBoundServerGainsLittle) {
  auto run = [](int cpus) {
    iolsys::SystemOptions options;
    options.cost.cpu_count = cpus;
    options.policy = iolsys::SystemOptions::Policy::kGds;
    System sys(options);
    FileId f = sys.fs().CreateFile("doc", 200 * 1024);
    FlashLiteServer lite(&sys.ctx(), &sys.net(), &sys.io(), &sys.runtime());
    ExperimentConfig config;
    config.persistent_connections = true;
    config.max_requests = 1000;
    config.warmup_requests = 50;
    ClosedLoop workload(40);
    Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &lite, config);
    return experiment.Run(&workload, [f] { return f; }).megabits_per_sec;
  };
  // Flash-Lite saturates the wire with one CPU on large files; more CPUs
  // cannot push past the link.
  EXPECT_LT(run(4), run(1) * 1.05);
}

// --- Admission control -------------------------------------------------------

TEST(AdmissionTest, MaxConcurrentQueuesInsteadOfDropping) {
  System sys;
  FileId f = sys.fs().CreateFile("doc", 20 * 1024);
  FlashServer flash(&sys.ctx(), &sys.net(), &sys.io());
  ExperimentConfig config;
  config.max_concurrent = 3;
  config.max_requests = 300;
  ClosedLoop workload(12);
  Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &flash, config);
  ExperimentResult result = experiment.Run(&workload, [f] { return f; });
  // Every request is eventually served...
  EXPECT_EQ(result.requests, 300u);
  // ...but never more than max_concurrent at once, and the excess waited.
  EXPECT_LE(result.peak_concurrent, 3);
  EXPECT_GT(result.admission_waits, 0u);
}

TEST(AdmissionTest, UncappedRunReachesFullConcurrency) {
  System sys;
  FileId f = sys.fs().CreateFile("doc", 20 * 1024);
  FlashServer flash(&sys.ctx(), &sys.net(), &sys.io());
  ExperimentConfig config;
  config.max_requests = 300;
  ClosedLoop workload(12);
  Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &flash, config);
  ExperimentResult result = experiment.Run(&workload, [f] { return f; });
  EXPECT_EQ(result.requests, 300u);
  EXPECT_EQ(result.peak_concurrent, 12);
  EXPECT_EQ(result.admission_waits, 0u);
}

// --- Disk/CPU overlap (the point of the staged pipeline) ---------------------

TEST(OverlapTest, ColdCacheRunOverlapsDiskCpuAndWire) {
  // Every request misses (distinct files), so each carries real disk, CPU
  // and wire demand. With >1 client the staged pipeline must overlap them:
  // total simulated time strictly below the summed per-request demands —
  // the old tally-then-schedule engine's serial lower bound.
  System sys;
  std::vector<FileId> files;
  for (int i = 0; i < 64; ++i) {
    files.push_back(sys.fs().CreateFile("f" + std::to_string(i), 64 * 1024));
  }
  FlashServer flash(&sys.ctx(), &sys.net(), &sys.io());
  ExperimentConfig config;
  config.max_requests = 64;
  ClosedLoop workload(8);
  Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &flash, config);
  int i = 0;
  ExperimentResult result =
      experiment.Run(&workload, [&] { return files[i++ % files.size()]; });
  EXPECT_EQ(result.requests, 64u);

  SimTime cpu_busy = sys.ctx().cpu().busy_time();
  SimTime disk_busy = sys.ctx().disk().busy_time();
  SimTime link_busy = sys.ctx().link().busy_time();
  ASSERT_GT(cpu_busy, 0);
  ASSERT_GT(disk_busy, 0);
  ASSERT_GT(link_busy, 0);
  EXPECT_LT(sys.ctx().clock().now(), cpu_busy + disk_busy + link_busy);
}

TEST(OverlapTest, SingleClientCannotOverlapItself) {
  // One closed-loop client is strictly serial: the run must take at least
  // as long as its summed demands (sanity check on the overlap assertion
  // above).
  System sys;
  std::vector<FileId> files;
  for (int i = 0; i < 16; ++i) {
    files.push_back(sys.fs().CreateFile("f" + std::to_string(i), 64 * 1024));
  }
  FlashServer flash(&sys.ctx(), &sys.net(), &sys.io());
  ExperimentConfig config;
  config.max_requests = 16;
  ClosedLoop workload(1);
  Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &flash, config);
  int i = 0;
  experiment.Run(&workload, [&] { return files[i++ % files.size()]; });
  SimTime busy = sys.ctx().cpu().busy_time() + sys.ctx().disk().busy_time() +
                 sys.ctx().link().busy_time();
  EXPECT_GE(sys.ctx().clock().now(), busy);
}

// --- Open-loop (Poisson) arrivals --------------------------------------------

TEST(OpenLoopTest, PoissonArrivalsCompleteAndAreDeterministic) {
  auto run = [] {
    System sys;
    FileId f = sys.fs().CreateFile("doc", 10 * 1024);
    FlashServer flash(&sys.ctx(), &sys.net(), &sys.io());
    ExperimentConfig config;
    config.max_requests = 400;
    config.warmup_requests = 20;
    OpenLoopPoisson workload(/*arrivals_per_sec=*/500, /*seed=*/0x9e3779b9,
                             /*initial_pool=*/8);
    Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &flash, config);
    return experiment.Run(&workload, [f] { return f; });
  };
  ExperimentResult a = run();
  ExperimentResult b = run();
  EXPECT_EQ(a.requests, 400u);
  EXPECT_DOUBLE_EQ(a.megabits_per_sec, b.megabits_per_sec);
  // An underloaded open-loop stream delivers roughly the offered load:
  // 500 req/s x ~10.25 KB ~= 41 Mb/s.
  EXPECT_GT(a.megabits_per_sec, 30.0);
  EXPECT_LT(a.megabits_per_sec, 55.0);
}

TEST(OpenLoopTest, OverloadGrowsThePoolInsteadOfDeadlocking) {
  System sys;
  FileId f = sys.fs().CreateFile("doc", 50 * 1024);
  ApacheServer apache(&sys.ctx(), &sys.net(), &sys.io());
  ExperimentConfig config;
  config.max_requests = 200;
  // Tiny pool; arrivals far outpace service.
  OpenLoopPoisson workload(/*arrivals_per_sec=*/5000, /*seed=*/0x9e3779b9,
                           /*initial_pool=*/2);
  Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &apache, config);
  ExperimentResult result = experiment.Run(&workload, [f] { return f; });
  EXPECT_EQ(result.requests, 200u);
  EXPECT_GT(result.peak_concurrent, 2);
}

// --- Pipelined persistent connections ----------------------------------------

TEST(PipelineDepthTest, PipeliningHidesRoundTripLatency) {
  auto run = [](int depth) {
    System sys;
    FileId f = sys.fs().CreateFile("doc", 2 * 1024);
    FlashLiteServer lite(&sys.ctx(), &sys.net(), &sys.io(), &sys.runtime());
    ExperimentConfig config;
    config.persistent_connections = true;
    config.max_requests = 1000;
    config.warmup_requests = 100;
    config.delay.one_way_delay = 2 * iolsim::kMillisecond;
    ClosedLoop workload(2, depth);
    Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &lite, config);
    return experiment.Run(&workload, [f] { return f; }).megabits_per_sec;
  };
  // A lone request per connection spends its cycle waiting out the 4 ms
  // round trip; four pipelined requests fill the pipe and should approach
  // a 4x gain while the server stays far from CPU saturation.
  EXPECT_GT(run(4), run(1) * 3.0);
}

TEST(PipelineDepthTest, PipeliningCannotBeatResourceSaturation) {
  auto run = [](int depth) {
    System sys;
    FileId f = sys.fs().CreateFile("doc", 2 * 1024);
    FlashLiteServer lite(&sys.ctx(), &sys.net(), &sys.io(), &sys.runtime());
    ExperimentConfig config;
    config.persistent_connections = true;
    config.max_requests = 1000;
    config.warmup_requests = 100;
    ClosedLoop workload(2, depth);
    Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &lite, config);
    return experiment.Run(&workload, [f] { return f; }).megabits_per_sec;
  };
  // On a LAN two closed-loop clients already saturate the CPU on 2 KB
  // files; deeper pipelines add concurrency but no capacity.
  double shallow = run(1);
  double deep = run(4);
  EXPECT_GE(deep, shallow * 0.95);
  EXPECT_LE(deep, shallow * 1.1);
}

}  // namespace
