// Tests for the shared-memory zero-copy IPC subsystem (src/ipc): region
// offset addressing, region-backed pools, the SPSC descriptor ring, the
// ShmStream adapter, and the zero-copy guarantees the transport makes —
// asserted through the stats counters, not assumed.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/httpd/cgi.h"
#include "src/iolite/runtime.h"
#include "src/ipc/ring_channel.h"
#include "src/ipc/shm_pool.h"
#include "src/ipc/shm_region.h"
#include "src/simos/rng.h"
#include "src/simos/sim_context.h"

namespace {

using iolipc::kFrameEnd;
using iolipc::RingChannel;
using iolipc::ShmPool;
using iolipc::ShmRegion;
using iolipc::ShmStream;
using iolipc::SliceDesc;
using iolite::Aggregate;
using iolite::BufferRef;
using iolsim::SimContext;

// Deterministic byte `i` of the test payload stream.
char PayloadByte(size_t i) { return static_cast<char>('a' + (i * 31 + i / 255) % 26); }

// --- ShmRegion --------------------------------------------------------------

TEST(ShmRegionTest, AnonymousFallbackOffsetsRoundTrip) {
  auto region = ShmRegion::Create(1 << 20);
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->size(), 1u << 20);

  char* a = region->AllocateExtent(1000);
  char* b = region->AllocateExtent(1000);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  // Extents are 64-byte aligned and addressable by offset from any mapper.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(region->At(region->OffsetOf(a)), a);
  EXPECT_EQ(region->At(region->OffsetOf(b)), b);
  EXPECT_GE(region->OffsetOf(b), region->OffsetOf(a) + 1000);
}

TEST(ShmRegionTest, ExhaustionReturnsNull) {
  auto region = ShmRegion::Create(64 * 1024);
  ASSERT_NE(region, nullptr);
  EXPECT_NE(region->AllocateExtent(60 * 1024), nullptr);
  EXPECT_EQ(region->AllocateExtent(60 * 1024), nullptr);
}

TEST(ShmRegionTest, PosixShmBackedWhenAvailable) {
  std::string name = "/iolite-test-" + std::to_string(getpid());
  auto region = ShmRegion::Create(1 << 20, name);
  ASSERT_NE(region, nullptr);
  if (!region->posix_shm_backed()) {
    GTEST_SKIP() << "no POSIX shm in this sandbox; anonymous fallback used";
  }
  char* p = region->AllocateExtent(128);
  std::memcpy(p, "hello-shm", 9);

  // A second, unrelated mapping of the same name sees the same bytes at the
  // same offset.
  auto other = ShmRegion::Attach(name);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(std::string(other->At(region->OffsetOf(p)), 9), "hello-shm");
}

// --- ShmPool ----------------------------------------------------------------

class ShmPoolTest : public ::testing::Test {
 protected:
  ShmPoolTest()
      : region_(ShmRegion::Create(4 << 20)),
        producer_(ctx_.vm().CreateDomain("producer")),
        pool_(&ctx_, "test-shm", producer_, region_.get()) {}

  SimContext ctx_;
  std::unique_ptr<ShmRegion> region_;
  iolsim::DomainId producer_;
  ShmPool pool_;
};

TEST_F(ShmPoolTest, BuffersAreRegionResident) {
  BufferRef b = pool_.AllocateFrom("abcdef", 6);
  iolite::Slice s(b, 1, 4);
  EXPECT_TRUE(pool_.Resident(s));
  EXPECT_EQ(std::string(region_->At(region_->OffsetOf(s.data())), 4), "bcde");
}

TEST_F(ShmPoolTest, DescribeResolveRoundTripPreservesPin) {
  BufferRef b = pool_.AllocateFrom("payload!", 8);
  SliceDesc d = pool_.DescribeAndPin(iolite::Slice(b, 0, 8));
  EXPECT_EQ(d.length, 8u);
  EXPECT_EQ(pool_.pinned_count(), 1u);

  // Dropping our reference must not recycle the buffer: the pin holds it
  // while the descriptor is in flight.
  iolite::Buffer* raw = b.get();
  b.Reset();
  EXPECT_GT(raw->refcount(), 0);

  iolite::Slice s = pool_.ResolveAndUnpin(d);
  EXPECT_EQ(pool_.pinned_count(), 0u);
  EXPECT_EQ(std::string(s.data(), s.length()), "payload!");
}

TEST_F(ShmPoolTest, ForeignSliceIsNotResident) {
  iolite::BufferPool heap_pool(&ctx_, "heap", iolsim::kKernelDomain);
  BufferRef b = heap_pool.AllocateFrom("xyz", 3);
  EXPECT_FALSE(pool_.Resident(iolite::Slice(b, 0, 3)));
}

// --- RingChannel ------------------------------------------------------------

TEST(RingChannelTest, PushPopFifo) {
  auto region = ShmRegion::Create(1 << 20);
  RingChannel ring = RingChannel::Create(region.get(), 8);
  ASSERT_TRUE(ring.valid());

  SliceDesc d{};
  for (uint64_t i = 0; i < 5; ++i) {
    d.offset = i * 100;
    d.length = 10 + i;
    d.flags = kFrameEnd;
    ASSERT_TRUE(ring.TryPushFrame(&d, 1));
  }
  EXPECT_EQ(ring.slots_used(), 5u);
  EXPECT_EQ(ring.bytes_queued(), 10u + 11 + 12 + 13 + 14);

  for (uint64_t i = 0; i < 5; ++i) {
    SliceDesc out{};
    ASSERT_TRUE(ring.TryPopSlice(&out));
    EXPECT_EQ(out.offset, i * 100);
    EXPECT_EQ(out.length, 10 + i);
  }
  SliceDesc out{};
  EXPECT_FALSE(ring.TryPopSlice(&out));
}

TEST(RingChannelTest, FrameIsAllOrNothing) {
  auto region = ShmRegion::Create(1 << 20);
  RingChannel ring = RingChannel::Create(region.get(), 4);
  ASSERT_TRUE(ring.valid());

  SliceDesc frame[3] = {};
  ASSERT_TRUE(ring.TryPushFrame(frame, 3));
  // Only one slot left: a two-descriptor frame must be refused whole.
  EXPECT_FALSE(ring.TryPushFrame(frame, 2));
  EXPECT_EQ(ring.slots_used(), 3u);
  // ...and still fit after the consumer drains.
  SliceDesc out{};
  ASSERT_TRUE(ring.TryPopSlice(&out));
  EXPECT_TRUE(ring.TryPushFrame(frame, 2));
}

TEST(RingChannelTest, WrapAroundManyTimes) {
  auto region = ShmRegion::Create(1 << 20);
  RingChannel ring = RingChannel::Create(region.get(), 8);
  SliceDesc d{};
  for (uint64_t i = 0; i < 1000; ++i) {
    d.offset = i;
    ASSERT_TRUE(ring.TryPushFrame(&d, 1));
    SliceDesc out{};
    ASSERT_TRUE(ring.TryPopSlice(&out));
    EXPECT_EQ(out.offset, i);
  }
}

// Two threads, shared ring: every value arrives exactly once, in order, and
// payload written before the push is visible after the pop (the release /
// acquire pairing the transport relies on).
TEST(RingChannelTest, SpscThreadedTransfer) {
  auto region = ShmRegion::Create(8 << 20);
  RingChannel producer_ring = RingChannel::Create(region.get(), 64);
  ASSERT_TRUE(producer_ring.valid());
  RingChannel consumer_ring = RingChannel::Attach(region.get(), producer_ring.state_offset());
  ASSERT_TRUE(consumer_ring.valid());

  constexpr uint64_t kValues = 200000;
  uint64_t* cells = reinterpret_cast<uint64_t*>(region->AllocateExtent(kValues * sizeof(uint64_t)));
  ASSERT_NE(cells, nullptr);

  std::thread producer([&] {
    SliceDesc d{};
    for (uint64_t i = 0; i < kValues; ++i) {
      cells[i] = i * 0x9e3779b97f4a7c15ull;
      d.offset = region->OffsetOf(&cells[i]);
      d.length = sizeof(uint64_t);
      d.flags = kFrameEnd;
      while (!producer_ring.TryPushFrame(&d, 1)) {
        std::this_thread::yield();
      }
    }
    producer_ring.Close();
  });

  uint64_t received = 0;
  bool ok = true;
  while (true) {
    SliceDesc out{};
    if (consumer_ring.TryPopSlice(&out)) {
      uint64_t v;
      std::memcpy(&v, region->At(out.offset), sizeof(v));
      ok = ok && (v == received * 0x9e3779b97f4a7c15ull);
      ++received;
    } else if (consumer_ring.drained()) {
      break;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ok);
  EXPECT_EQ(received, kValues);
}

// Real process boundary: a fork()ed consumer attaches to the ring through
// the shared mapping and sees every byte the parent published, without a
// single payload copy on either side.
TEST(RingChannelTest, CrossProcessForkTransfer) {
  auto region = ShmRegion::Create(4 << 20);
  RingChannel ring = RingChannel::Create(region.get(), 64);
  ASSERT_TRUE(ring.valid());
  uint64_t ring_offset = ring.state_offset();

  constexpr size_t kChunk = 1024;
  constexpr uint64_t kChunks = 512;
  char* payload = region->AllocateExtent(kChunk * kChunks);
  ASSERT_NE(payload, nullptr);

  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Consumer process: attach, drain, verify. Exit code carries the verdict.
    RingChannel consumer = RingChannel::Attach(region.get(), ring_offset);
    uint64_t seen = 0;
    bool ok = consumer.valid();
    while (ok) {
      SliceDesc out{};
      if (consumer.TryPeekSlice(&out)) {
        // Verify in place, then commit: the producer may recycle only after
        // the commit.
        const char* p = region->At(out.offset);
        for (size_t i = 0; i < out.length && ok; ++i) {
          ok = p[i] == PayloadByte(seen * kChunk + i);
        }
        ++seen;
        consumer.CommitPop();
      } else if (consumer.drained()) {
        break;
      } else {
        sched_yield();
      }
    }
    _exit(ok && seen == kChunks ? 0 : 1);
  }

  // Producer: fill each chunk, then publish it.
  SliceDesc d{};
  for (uint64_t c = 0; c < kChunks; ++c) {
    char* chunk = payload + c * kChunk;
    for (size_t i = 0; i < kChunk; ++i) {
      chunk[i] = PayloadByte(c * kChunk + i);
    }
    d.offset = region->OffsetOf(chunk);
    d.length = kChunk;
    d.flags = kFrameEnd;
    while (!ring.TryPushFrame(&d, 1)) {
      sched_yield();
    }
  }
  ring.Close();

  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "consumer process saw corrupted or missing payload";
}

// --- ShmStream --------------------------------------------------------------

class ShmStreamTest : public ::testing::Test {
 protected:
  ShmStreamTest()
      : region_(ShmRegion::Create(16 << 20)),
        producer_(ctx_.vm().CreateDomain("producer")),
        consumer_(ctx_.vm().CreateDomain("consumer")),
        pool_(&ctx_, "stream-pool", producer_, region_.get()),
        stream_(&ctx_, &pool_, RingChannel::Create(region_.get(), 256)) {}

  Aggregate MakePayload(size_t offset, size_t n) {
    BufferRef b = pool_.Allocate(n);
    char* dst = b->writable_data();
    for (size_t i = 0; i < n; ++i) {
      dst[i] = PayloadByte(offset + i);
    }
    b->Seal(n);
    return Aggregate::FromBuffer(std::move(b));
  }

  SimContext ctx_;
  std::unique_ptr<ShmRegion> region_;
  iolsim::DomainId producer_;
  iolsim::DomainId consumer_;
  ShmPool pool_;
  ShmStream stream_;
};

TEST_F(ShmStreamTest, WriteReadRoundTrip) {
  Aggregate sent = MakePayload(0, 5000);
  EXPECT_EQ(stream_.Write(producer_, sent), 5000u);
  EXPECT_EQ(stream_.ReadableBytes(), 5000u);

  Aggregate got = stream_.Read(consumer_, SIZE_MAX);
  EXPECT_TRUE(got.ContentEquals(sent));
  EXPECT_EQ(stream_.ReadableBytes(), 0u);
  EXPECT_EQ(ctx_.stats().ipc_bytes_transferred, 5000u);
  EXPECT_EQ(ctx_.stats().ipc_bytes_copied, 0u);
}

TEST_F(ShmStreamTest, ReadSplitsAtMaxBytes) {
  stream_.Write(producer_, MakePayload(0, 3000));
  Aggregate first = stream_.Read(consumer_, 1000);
  Aggregate second = stream_.Read(consumer_, SIZE_MAX);
  EXPECT_EQ(first.size(), 1000u);
  EXPECT_EQ(second.size(), 2000u);
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(first.ByteAt(i), static_cast<uint8_t>(PayloadByte(i)));
  }
  for (size_t i = 0; i < 2000; ++i) {
    ASSERT_EQ(second.ByteAt(i), static_cast<uint8_t>(PayloadByte(1000 + i)));
  }
}

TEST_F(ShmStreamTest, ForeignSliceIsStagedAndCounted) {
  iolite::BufferPool heap_pool(&ctx_, "heap", iolsim::kKernelDomain);
  BufferRef b = heap_pool.AllocateFrom("not in the region", 17);
  ctx_.stats().Reset();

  Aggregate agg = Aggregate::FromBuffer(std::move(b));
  EXPECT_EQ(stream_.Write(producer_, agg), 17u);
  EXPECT_EQ(ctx_.stats().ipc_bytes_copied, 17u);
  EXPECT_EQ(ctx_.stats().ipc_bytes_transferred, 0u);

  Aggregate got = stream_.Read(consumer_, SIZE_MAX);
  EXPECT_EQ(got.ToString(), "not in the region");
}

TEST_F(ShmStreamTest, RingFullBackpressureCountsAndRecovers) {
  // 256 slots; single-slice frames. Fill the ring completely...
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(stream_.Write(producer_, MakePayload(0, 16)), 16u);
  }
  uint64_t full_before = ctx_.stats().ipc_ring_full_events;
  EXPECT_EQ(stream_.Write(producer_, MakePayload(0, 16)), 0u);
  EXPECT_EQ(ctx_.stats().ipc_ring_full_events, full_before + 1);
  EXPECT_EQ(pool_.pinned_count(), 256u);  // The refused frame pinned nothing.

  // Draining makes room again.
  stream_.Read(consumer_, SIZE_MAX);
  EXPECT_EQ(pool_.pinned_count(), 0u);
  EXPECT_EQ(stream_.Write(producer_, MakePayload(0, 16)), 16u);
}

// A foreign-process consumer never touches the producer's pin table; the
// producer learns payloads are consumable from the committed ring head and
// reclaims pins lazily, so the pool recycles instead of growing without
// bound.
TEST_F(ShmStreamTest, ForeignConsumerPinsReclaimedFromRingHead) {
  // Simulate the foreign consumer with a second handle on the same ring.
  RingChannel consumer = RingChannel::Attach(region_.get(), stream_.ring().state_offset());
  ASSERT_TRUE(consumer.valid());

  ASSERT_EQ(stream_.Write(producer_, MakePayload(0, 1024)), 1024u);
  ASSERT_EQ(stream_.Write(producer_, MakePayload(1024, 1024)), 1024u);
  EXPECT_EQ(pool_.pinned_count(), 2u);

  // Foreign consumer drains the ring without resolving any pins.
  SliceDesc d{};
  while (consumer.TryPopSlice(&d)) {
  }

  // The next Write (or an explicit ReclaimConsumed) releases them.
  stream_.ReclaimConsumed();
  EXPECT_EQ(pool_.pinned_count(), 0u);

  // Recycling now works: the freed buffers satisfy the next allocation.
  uint64_t recycled_before = ctx_.stats().buffers_recycled;
  stream_.Write(producer_, MakePayload(0, 1024));
  EXPECT_GT(ctx_.stats().buffers_recycled, recycled_before);
}

// A stream built over a ring that already carried traffic must base its
// reclaim bookkeeping on the ring's current tail, not zero — otherwise it
// unpins payloads whose descriptors are still queued.
TEST_F(ShmStreamTest, StreamOverUsedRingDoesNotReclaimInFlightPins) {
  RingChannel ring = RingChannel::Create(region_.get(), 64);
  SliceDesc d{};
  for (int i = 0; i < 5; ++i) {  // Prior traffic: tail == head == 5.
    ASSERT_TRUE(ring.TryPushFrame(&d, 1));
    ASSERT_TRUE(ring.TryPopSlice(&d));
  }

  ShmStream late(&ctx_, &pool_, RingChannel::Attach(region_.get(), ring.state_offset()));
  ASSERT_EQ(late.Write(producer_, MakePayload(0, 512)), 512u);
  late.ReclaimConsumed();
  // The descriptor is still queued (slot 5, consumed == 5): its pin must
  // survive until the consumer commits past it.
  EXPECT_EQ(pool_.pinned_count(), 1u);

  Aggregate got = late.Read(consumer_, SIZE_MAX);
  EXPECT_EQ(got.size(), 512u);
  EXPECT_EQ(pool_.pinned_count(), 0u);
}

TEST_F(ShmStreamTest, WorksUnchangedThroughIolReadWrite) {
  // The whole point of the Stream adapter: IOL_read / IOL_write over a
  // shared-memory ring with no API change.
  iolite::IoLiteRuntime runtime(&ctx_);
  auto stream = std::make_shared<ShmStream>(&ctx_, &pool_,
                                            RingChannel::Create(region_.get(), 64));
  iolite::Fd wfd = runtime.Open(stream, producer_);
  iolite::Fd rfd = runtime.Open(stream, consumer_);

  Aggregate sent = MakePayload(0, 9000);
  EXPECT_EQ(runtime.IolWrite(wfd, sent), 9000u);
  Aggregate got = runtime.IolRead(rfd, SIZE_MAX);
  EXPECT_TRUE(got.ContentEquals(sent));
  // The consumer domain was granted read access to the transferred chunks.
  EXPECT_TRUE(runtime.CheckAccess(got, consumer_));
}

// The satellite property test: randomized interleaved producer/consumer with
// random push/pop sizes. Byte order is preserved end to end and the warm
// path (pool-recycled buffers, region-resident slices) copies nothing —
// asserted on both the generic and the IPC copy counters.
TEST_F(ShmStreamTest, RandomizedSpscPropertyZeroCopyWarmPath) {
  iolsim::Rng rng(20260728);
  constexpr size_t kTotal = 1 << 20;

  // Warm the pool so steady state recycles buffers instead of carving.
  for (int i = 0; i < 8; ++i) {
    stream_.Write(producer_, MakePayload(0, 4096));
  }
  stream_.Read(consumer_, SIZE_MAX);

  uint64_t copies_before = ctx_.stats().bytes_copied;
  uint64_t ipc_copies_before = ctx_.stats().ipc_bytes_copied;

  size_t produced = 0;
  size_t consumed = 0;
  std::string received;
  received.reserve(kTotal);

  while (consumed < kTotal) {
    bool produce = produced < kTotal && (consumed == produced || rng.NextBelow(2) == 0);
    if (produce) {
      size_t n = 1 + static_cast<size_t>(rng.NextBelow(8000));
      n = std::min(n, kTotal - produced);
      if (stream_.Write(producer_, MakePayload(produced, n)) == n) {
        produced += n;
      }
      // A zero return is ring-full backpressure; fall through to drain.
    } else {
      size_t m = 1 + static_cast<size_t>(rng.NextBelow(12000));
      Aggregate got = stream_.Read(consumer_, m);
      received.append(got.ToString());
      consumed += got.size();
    }
  }

  ASSERT_EQ(received.size(), kTotal);
  for (size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(received[i], PayloadByte(i)) << "byte order broken at " << i;
  }
  EXPECT_EQ(ctx_.stats().bytes_copied, copies_before) << "warm path touched payload";
  EXPECT_EQ(ctx_.stats().ipc_bytes_copied, ipc_copies_before);
  EXPECT_EQ(pool_.pinned_count(), 0u);
  EXPECT_GT(ctx_.stats().buffers_recycled, 0u);
}

// --- CGI transport knob -----------------------------------------------------

// Running the CGI pipeline over the simulated pipe and over the real
// shared-memory ring must produce byte-identical responses, with the ring
// transport copying only the response header (never the document).
TEST(CgiTransportTest, ShmRingMatchesSimulatedPipeByteForByte) {
  constexpr size_t kDoc = 60000;

  auto run = [&](iolhttp::CgiTransport transport, std::string* out,
                 uint64_t* doc_bytes_copied) {
    SimContext ctx;
    iolite::IoLiteRuntime runtime(&ctx);
    iolnet::NetworkSubsystem net(&ctx, /*checksum_cache_enabled=*/true);
    iolhttp::LiteCgiServer server(&ctx, &net, /*io=*/nullptr, &runtime, kDoc, transport);
    server.set_capture_responses(true);
    iolnet::TcpConnection conn(&net, server.uses_iolite_sockets());
    conn.Connect();

    size_t response = 0;
    for (int i = 0; i < 3; ++i) {  // Warm path: repeat requests.
      ctx.stats().Reset();
      response = server.HandleRequest(&conn, 0);
    }
    EXPECT_EQ(response, iolhttp::kResponseHeaderBytes + kDoc);
    *out = server.last_response().ToString();
    // Everything copied on a warm request is the 250-byte header; the
    // document itself must move by reference on both transports.
    *doc_bytes_copied = ctx.stats().bytes_copied - iolhttp::kResponseHeaderBytes;
    conn.Close();
  };

  std::string pipe_bytes;
  std::string shm_bytes;
  uint64_t pipe_doc_copied = 0;
  uint64_t shm_doc_copied = 0;
  run(iolhttp::CgiTransport::kSimulatedPipe, &pipe_bytes, &pipe_doc_copied);
  run(iolhttp::CgiTransport::kShmRing, &shm_bytes, &shm_doc_copied);

  ASSERT_EQ(pipe_bytes.size(), shm_bytes.size());
  EXPECT_EQ(pipe_bytes, shm_bytes) << "transports must be byte-identical";
  EXPECT_EQ(pipe_doc_copied, 0u);
  EXPECT_EQ(shm_doc_copied, 0u);
}

}  // namespace
