// Property tests for the two EventQueue scheduler implementations.
//
// The contract: calendar queue and reference heap dispatch the exact same
// (when, seq) sequence for any schedule/cancel/re-schedule stream. The
// golden determinism tests pin the macro behavior; these tests attack the
// scheduler directly with adversarial shapes — same-instant bursts,
// far-future jumps that force the full-ring fallback, populations that
// cross the grow/shrink resize thresholds, and cancels interleaved with
// dispatch.

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/simos/clock.h"
#include "src/simos/event_queue.h"

namespace iolsim {
namespace {

using Impl = EventQueue::Impl;

// One deterministic stream of scheduler operations, replayable against
// either implementation. Ops reference events by stream-local index so the
// two replays make identical choices.
struct OpStream {
  struct Op {
    enum Kind { kSchedule, kCancel, kRunOne, kRunSome } kind;
    SimTime delay = 0;   // kSchedule: offset from now.
    size_t target = 0;   // kCancel: index into scheduled ids.
    int count = 0;       // kRunSome.
  };
  std::vector<Op> ops;
};

OpStream MakeRandomStream(uint32_t seed, size_t n_ops, SimTime max_delay) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> kind(0, 99);
  std::uniform_int_distribution<SimTime> delay(0, max_delay);
  std::uniform_int_distribution<size_t> pick(0, 1u << 20);
  std::uniform_int_distribution<int> burst(1, 16);
  OpStream s;
  s.ops.reserve(n_ops);
  for (size_t i = 0; i < n_ops; ++i) {
    int k = kind(rng);
    OpStream::Op op;
    if (k < 55) {
      op.kind = OpStream::Op::kSchedule;
      op.delay = delay(rng);
      if (k < 10) {
        op.delay = 0;  // Same-instant burst pressure.
      }
    } else if (k < 70) {
      op.kind = OpStream::Op::kCancel;
      op.target = pick(rng);
    } else if (k < 90) {
      op.kind = OpStream::Op::kRunOne;
    } else {
      op.kind = OpStream::Op::kRunSome;
      op.count = burst(rng);
    }
    s.ops.push_back(op);
  }
  return s;
}

// Replays `stream` against a fresh queue of the given impl and returns the
// dispatched (when, payload) sequence. Payload is the schedule-op index, so
// matching sequences mean the same events ran in the same order at the same
// times.
std::vector<std::pair<SimTime, uint64_t>> Replay(const OpStream& stream, Impl impl) {
  VirtualClock clock;
  EventQueue q(&clock, nullptr, impl);
  std::vector<std::pair<SimTime, uint64_t>> dispatched;
  std::vector<EventQueue::EventId> ids;  // Parallel to schedule-op count.
  uint64_t schedule_count = 0;
  auto record = [&dispatched](SimTime when, uint64_t tag) {
    dispatched.emplace_back(when, tag);
  };
  for (const auto& op : stream.ops) {
    switch (op.kind) {
      case OpStream::Op::kSchedule: {
        uint64_t tag = schedule_count++;
        SimTime when = clock.now() + op.delay;
        ids.push_back(q.ScheduleAt(when, [&record, &clock, tag] {
          record(clock.now(), tag);
        }));
        break;
      }
      case OpStream::Op::kCancel:
        if (!ids.empty()) {
          // Both replays see the same ids vector shape, so the same event
          // is targeted; Cancel on an already-fired id is a no-op.
          q.Cancel(ids[op.target % ids.size()]);
        }
        break;
      case OpStream::Op::kRunOne:
        q.RunOne();
        break;
      case OpStream::Op::kRunSome:
        for (int i = 0; i < op.count && q.RunOne(); ++i) {
        }
        break;
    }
  }
  q.RunAll();
  return dispatched;
}

TEST(SchedulerEquivalence, RandomStreamsMatchHeapExactly) {
  for (uint32_t seed = 1; seed <= 24; ++seed) {
    OpStream s = MakeRandomStream(seed, 4000, 1'000'000);
    auto cal = Replay(s, Impl::kCalendar);
    auto heap = Replay(s, Impl::kHeap);
    ASSERT_EQ(cal, heap) << "seed " << seed;
    ASSERT_FALSE(cal.empty()) << "seed " << seed;
    ASSERT_TRUE(std::is_sorted(cal.begin(), cal.end(),
                               [](const auto& a, const auto& b) { return a.first < b.first; }))
        << "seed " << seed;
  }
}

TEST(SchedulerEquivalence, SparseFarFutureStreamsMatch) {
  // Huge delays relative to the day width force cursor laps and the
  // direct-search fallback.
  for (uint32_t seed = 100; seed <= 108; ++seed) {
    OpStream s = MakeRandomStream(seed, 1500, SimTime{50'000'000'000});
    ASSERT_EQ(Replay(s, Impl::kCalendar), Replay(s, Impl::kHeap)) << "seed " << seed;
  }
}

TEST(SchedulerEquivalence, DenseSameInstantStreamsMatch) {
  // Tiny delay range: most events collide on the same instants, stressing
  // in-bucket FIFO order and the seq tie-break.
  for (uint32_t seed = 200; seed <= 208; ++seed) {
    OpStream s = MakeRandomStream(seed, 4000, 16);
    ASSERT_EQ(Replay(s, Impl::kCalendar), Replay(s, Impl::kHeap)) << "seed " << seed;
  }
}

TEST(SchedulerEquivalence, GrowShrinkCycleMatches) {
  // Pump the population up past several resize doublings, drain to nearly
  // empty, and repeat — every lap crosses grow and shrink thresholds.
  VirtualClock cc, hc;
  EventQueue cal(&cc, nullptr, Impl::kCalendar);
  EventQueue heap(&hc, nullptr, Impl::kHeap);
  std::vector<SimTime> cal_out, heap_out;
  std::mt19937 rng(7);
  std::uniform_int_distribution<SimTime> delay(0, 200'000);
  for (int lap = 0; lap < 4; ++lap) {
    for (int i = 0; i < 3000; ++i) {
      SimTime d = delay(rng);
      cal.ScheduleAfter(d, [&cal_out, &cc] { cal_out.push_back(cc.now()); });
      heap.ScheduleAfter(d, [&heap_out, &hc] { heap_out.push_back(hc.now()); });
    }
    ASSERT_EQ(cal.size(), heap.size());
    while (cal.size() > 8) {
      ASSERT_TRUE(cal.RunOne());
      ASSERT_TRUE(heap.RunOne());
    }
  }
  ASSERT_EQ(cal.RunAll(), heap.RunAll());
  EXPECT_EQ(cal_out, heap_out);
}

TEST(SchedulerCancel, CancelledEventsNeverRunAndIdsGoStale) {
  VirtualClock clock;
  EventQueue q(&clock, nullptr, Impl::kCalendar);
  int ran = 0;
  auto id_a = q.ScheduleAfter(10, [&ran] { ++ran; });
  auto id_b = q.ScheduleAfter(20, [&ran] { ++ran; });
  q.ScheduleAfter(30, [&ran] { ++ran; });
  EXPECT_EQ(q.size(), 3u);
  EXPECT_TRUE(q.Cancel(id_b));
  EXPECT_FALSE(q.Cancel(id_b));  // Double-cancel rejected.
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.RunAll(), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(clock.now(), 30);      // The cancelled event moved no clock.
  EXPECT_FALSE(q.Cancel(id_a));    // Dispatched ⇒ stale.
  EXPECT_TRUE(q.empty());
}

TEST(SchedulerCancel, CancelHeadDoesNotAdvanceClockOrCounter) {
  VirtualClock clock;
  uint64_t dispatched = 0;
  EventQueue q(&clock, &dispatched, Impl::kCalendar);
  bool late_ran = false;
  auto head = q.ScheduleAfter(5, [] { ADD_FAILURE() << "cancelled head ran"; });
  q.ScheduleAfter(50, [&late_ran] { late_ran = true; });
  ASSERT_TRUE(q.Cancel(head));
  SimTime when = 0;
  ASSERT_TRUE(q.PeekWhen(&when));  // Purges the cancelled head.
  EXPECT_EQ(when, 50);
  EXPECT_EQ(clock.now(), 0);
  EXPECT_EQ(q.RunAll(), 1u);
  EXPECT_TRUE(late_ran);
  EXPECT_EQ(dispatched, 1u);
}

TEST(SchedulerKnob, DefaultImplOverride) {
  Impl saved = EventQueue::default_impl();
  EventQueue::set_default_impl(Impl::kHeap);
  VirtualClock clock;
  EventQueue q(&clock);
  EXPECT_EQ(q.impl(), Impl::kHeap);
  EventQueue::set_default_impl(saved);
}

TEST(SchedulerRunUntil, DeadlineSemanticsIdenticalAcrossImpls) {
  for (Impl impl : {Impl::kCalendar, Impl::kHeap}) {
    VirtualClock clock;
    EventQueue q(&clock, nullptr, impl);
    std::vector<SimTime> out;
    for (SimTime t : {5, 10, 10, 15, 20}) {
      q.ScheduleAt(t, [&out, &clock] { out.push_back(clock.now()); });
    }
    EXPECT_EQ(q.RunUntil(10), 3u);  // Events exactly at the deadline run.
    EXPECT_EQ(clock.now(), 10);
    EXPECT_EQ(q.RunUntil(100), 2u);
    EXPECT_EQ(out, (std::vector<SimTime>{5, 10, 10, 15, 20}));
  }
}

}  // namespace
}  // namespace iolsim
