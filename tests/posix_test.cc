// Tests for the POSIX compatibility layer: copy-semantics read/write,
// copy-based pipes, and the mmap emulation with lazy copy and copy-on-write
// (Sections 3.8, 4.2, 6.1, 6.2).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/posix/posix_io.h"
#include "src/system/system.h"
#include "tests/test_util.h"

namespace {

using iolfs::FileId;
using iolposix::MmapRegion;
using iolposix::PosixPipe;
using iolsys::System;

class PosixTest : public ::testing::Test {
 protected:
  System sys_;
};

TEST_F(PosixTest, ReadReturnsFileContent) {
  FileId f = sys_.fs().CreateFile("a", 4096);
  std::vector<char> buf(4096);
  EXPECT_EQ(sys_.posix().Read(f, 0, buf.data(), 4096), 4096u);
  EXPECT_EQ(std::string(buf.data(), 4096), ioltest::FileContent(sys_.fs(), f, 0, 4096));
}

TEST_F(PosixTest, ReadChargesOneCopyPerByte) {
  FileId f = sys_.fs().CreateFile("a", 10000);
  sys_.io().ReadExtent(f, 0, 10000);  // Warm the cache.
  std::vector<char> buf(10000);
  uint64_t copied = sys_.ctx().stats().bytes_copied;
  sys_.posix().Read(f, 0, buf.data(), 10000);
  EXPECT_EQ(sys_.ctx().stats().bytes_copied - copied, 10000u);
}

TEST_F(PosixTest, ReadClampsAtEndOfFile) {
  FileId f = sys_.fs().CreateFile("a", 100);
  std::vector<char> buf(1000);
  EXPECT_EQ(sys_.posix().Read(f, 60, buf.data(), 1000), 40u);
  EXPECT_EQ(sys_.posix().Read(f, 100, buf.data(), 1000), 0u);
}

TEST_F(PosixTest, WriteThenReadRoundTrips) {
  FileId f = sys_.fs().CreateFile("a", 1000);
  std::string payload = "copy-semantics payload";
  sys_.posix().Write(f, 50, payload.data(), payload.size());
  std::vector<char> buf(payload.size());
  sys_.posix().Read(f, 50, buf.data(), payload.size());
  EXPECT_EQ(std::string(buf.data(), payload.size()), payload);
}

TEST_F(PosixTest, WriteHasCopySemantics) {
  // After write returns, the application may modify its buffer without
  // affecting the file.
  FileId f = sys_.fs().CreateFile("a", 100);
  std::string payload = "original";
  sys_.posix().Write(f, 0, payload.data(), payload.size());
  payload[0] = 'X';
  std::vector<char> buf(8);
  sys_.posix().Read(f, 0, buf.data(), 8);
  EXPECT_EQ(std::string(buf.data(), 8), "original");
}

TEST_F(PosixTest, PipeRoundTripCopiesTwice) {
  PosixPipe pipe(&sys_.ctx());
  std::string msg = "through the kernel";
  uint64_t copied = sys_.ctx().stats().bytes_copied;
  pipe.Write(msg.data(), msg.size());
  std::vector<char> buf(msg.size());
  EXPECT_EQ(pipe.Read(buf.data(), msg.size()), msg.size());
  EXPECT_EQ(std::string(buf.data(), msg.size()), msg);
  EXPECT_EQ(sys_.ctx().stats().bytes_copied - copied, 2 * msg.size());
}

TEST_F(PosixTest, PipeShortReads) {
  PosixPipe pipe(&sys_.ctx());
  pipe.Write("abcdef", 6);
  std::vector<char> buf(4);
  EXPECT_EQ(pipe.Read(buf.data(), 4), 4u);
  EXPECT_EQ(std::string(buf.data(), 4), "abcd");
  EXPECT_EQ(pipe.bytes_queued(), 2u);
  EXPECT_EQ(pipe.Read(buf.data(), 4), 2u);
  EXPECT_EQ(pipe.Read(buf.data(), 4), 0u);
}

// --- mmap --------------------------------------------------------------------

TEST_F(PosixTest, MmapReadSeesFileContent) {
  FileId f = sys_.fs().CreateFile("a", 10000);
  MmapRegion region(&sys_.posix(), f);
  const char* p = region.EnsureRead(0, 10000);
  EXPECT_EQ(std::string(p, 10000), ioltest::FileContent(sys_.fs(), f, 0, 10000));
}

TEST_F(PosixTest, MmapAlignedDataIsNotCopied) {
  // Data read from local disk is page-aligned: mapping only, no copy.
  FileId f = sys_.fs().CreateFile("a", 8192);
  sys_.io().ReadExtent(f, 0, 8192);  // Cached as one aligned buffer.
  MmapRegion region(&sys_.posix(), f);
  region.EnsureRead(0, 8192);
  EXPECT_EQ(region.pages_copied(), 0u);
  EXPECT_EQ(region.pages_mapped(), 2u);
}

TEST_F(PosixTest, MmapFaultsArePerPageAndLazy) {
  FileId f = sys_.fs().CreateFile("a", 16384);
  MmapRegion region(&sys_.posix(), f);
  EXPECT_EQ(region.pages_mapped(), 0u);  // Nothing until first access.
  region.EnsureRead(0, 100);
  EXPECT_EQ(region.pages_mapped(), 1u);
  region.EnsureRead(0, 100);  // Already faulted: no new work.
  EXPECT_EQ(region.pages_mapped(), 1u);
  region.EnsureRead(4096, 8192);
  EXPECT_EQ(region.pages_mapped(), 3u);
}

TEST_F(PosixTest, MmapUnalignedDataIsLazilyCopied) {
  // Simulate file data that arrived from the network: cached as an extent
  // whose placement is not page-aligned (offset 3 within its buffer).
  FileId f = sys_.fs().CreateFile("a", 4096);
  auto* pool = sys_.runtime().kernel_pool();
  std::string content = ioltest::FileContent(sys_.fs(), f, 0, 4096);
  iolite::BufferRef raw = pool->AllocateFrom(("xyz" + content).data(), 4099);
  iolite::Aggregate misaligned =
      iolite::Aggregate::FromSlice(iolite::Slice(raw, 3, 4096));
  sys_.cache().Insert(f, 0, misaligned);

  MmapRegion region(&sys_.posix(), f);
  const char* p = region.EnsureRead(0, 4096);
  EXPECT_EQ(std::string(p, 4096), content);    // Correct bytes...
  EXPECT_EQ(region.pages_copied(), 1u);         // ...via a lazy page copy.
}

TEST_F(PosixTest, MmapStoreToSharedPageCopiesOnWrite) {
  FileId f = sys_.fs().CreateFile("a", 4096);
  // The page is also referenced through an immutable IO-Lite buffer (an
  // earlier IOL_read): a store must preserve that snapshot.
  iolite::Aggregate snapshot = sys_.io().ReadExtent(f, 0, 4096);
  std::string before = snapshot.ToString();

  MmapRegion region(&sys_.posix(), f);
  char* p = region.EnsureWrite(0, 10);
  EXPECT_EQ(region.pages_copied(), 1u);  // COW fired.
  std::memcpy(p, "OVERWRITE!", 10);
  region.Sync();

  EXPECT_EQ(snapshot.ToString(), before);  // Snapshot preserved.
  // The file itself sees the store after sync.
  std::vector<char> buf(10);
  sys_.posix().Read(f, 0, buf.data(), 10);
  EXPECT_EQ(std::string(buf.data(), 10), "OVERWRITE!");
}

TEST_F(PosixTest, MmapChargesMapCostOnFault) {
  FileId f = sys_.fs().CreateFile("a", 4096);
  sys_.io().ReadExtent(f, 0, 4096);
  MmapRegion region(&sys_.posix(), f);
  iolsim::SimTime before = sys_.ctx().clock().now();
  region.EnsureRead(0, 4096);
  EXPECT_GE(sys_.ctx().clock().now() - before, sys_.ctx().cost().PageMapCost(1));
}

}  // namespace
