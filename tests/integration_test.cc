// Cross-module integration tests, including the complex-sharing scenario of
// Section 3.7 and end-to-end server/workload runs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/driver/experiment.h"
#include "src/driver/workload.h"
#include "src/httpd/http_server.h"
#include "src/iolite/pipe.h"
#include "src/system/system.h"
#include "src/workload/trace.h"
#include "tests/test_util.h"

namespace {

using iolfs::FileId;
using iolsys::System;

// Section 3.7's worked example: "an application reads a data record from
// file A, appends that record to the same file A, then writes the record to
// a second file B, and finally transmits the record via a network
// connection. After this sequence, the buffer containing the record appears
// in two different cache entries of file A, one of file B, in the network
// transmission buffers, and in the user address space."
TEST(SharingScenarioTest, OneBufferManyRoles) {
  System sys;
  FileId file_a = sys.fs().CreateFile("A", 4096);
  FileId file_b = sys.fs().CreateFile("B", 1);

  // Read the record from file A.
  iolite::Aggregate record = sys.io().ReadExtent(file_a, 0, 1024);
  const iolite::Buffer* buffer = record.slices()[0].buffer().get();
  std::string content = record.ToString();

  // Append the record to file A (offset 4096).
  sys.io().WriteExtent(file_a, 4096, record);
  // Write the record to file B.
  sys.io().WriteExtent(file_b, 0, record);
  // Transmit via a network connection.
  iolnet::TcpConnection conn(&sys.net(), /*iolite_sockets=*/true);
  conn.Connect();
  conn.SendAggregate(record);
  conn.Close();

  // One physical buffer, shared everywhere; zero copies anywhere.
  EXPECT_EQ(sys.ctx().stats().bytes_copied, 0u);
  EXPECT_EQ(sys.io().ReadExtent(file_a, 0, 1024).slices()[0].buffer().get(), buffer);
  EXPECT_EQ(sys.io().ReadExtent(file_a, 4096, 1024).slices()[0].buffer().get(), buffer);
  EXPECT_EQ(sys.io().ReadExtent(file_b, 0, 1024).slices()[0].buffer().get(), buffer);
  // And all views agree on the bytes.
  EXPECT_EQ(sys.io().ReadExtent(file_b, 0, 1024).ToString(), content);
  // Refcount reflects the sharing: record + 3 cache entries hold it.
  EXPECT_GE(buffer->refcount(), 4);
}

TEST(SharingScenarioTest, EvictingOneRoleLeavesOthersIntact) {
  System sys;
  FileId file_a = sys.fs().CreateFile("A", 2048);
  FileId file_b = sys.fs().CreateFile("B", 1);

  iolite::Aggregate record = sys.io().ReadExtent(file_a, 0, 2048);
  sys.io().WriteExtent(file_b, 0, record);
  std::string content = record.ToString();

  // Evict everything from the cache.
  sys.cache().EnforceBudget(0);
  EXPECT_EQ(sys.cache().entry_count(), 0u);

  // The application's aggregate still sees the data (buffers persist), and
  // re-reading B from "disk" returns the written content.
  EXPECT_EQ(record.ToString(), content);
  EXPECT_EQ(sys.io().ReadExtent(file_b, 0, 2048).ToString(), content);
}

TEST(EndToEndTest, CgiPipelineDeliversIdenticalBytesOnBothPaths) {
  // A CGI process composes a response from a primary file plus generated
  // data and sends it through a pipe to a consumer — the IO-Lite path must
  // deliver byte-identical content to the copy path.
  System sys;
  FileId primary = sys.fs().CreateFile("primary", 8192);
  std::string generated = "<!-- generated -->";

  // IO-Lite path.
  iolsim::DomainId cgi = sys.ctx().vm().CreateDomain("cgi");
  iolite::BufferPool* pool = sys.runtime().CreatePool("cgi", cgi);
  iolite::PipeChannel channel(&sys.ctx());
  iolite::Aggregate dynamic = ioltest::AggFrom(pool, generated);
  dynamic.Append(sys.io().ReadExtent(primary, 0, 8192));
  channel.Push(dynamic);
  iolite::Aggregate lite_result = channel.Pop(SIZE_MAX);

  // Copy path.
  iolposix::PosixPipe pipe(&sys.ctx());
  std::vector<char> buf(8192);
  sys.posix().Read(primary, 0, buf.data(), 8192);
  pipe.Write(generated.data(), generated.size());
  pipe.Write(buf.data(), buf.size());
  std::vector<char> out(generated.size() + 8192);
  pipe.Read(out.data(), out.size());

  EXPECT_EQ(lite_result.ToString(), std::string(out.data(), out.size()));
}

TEST(EndToEndTest, TraceReplayConservesRequestsAndBytes) {
  // One client keeps the replay strictly serial, so completion order equals
  // issue order and byte conservation can be checked exactly. (With
  // concurrent clients the staged pipeline may reorder completions — e.g. a
  // cache hit finishing before an earlier request's disk read — which is
  // covered by the concurrent variant below.)
  System sys;
  iolwl::TraceSpec spec = iolwl::SubtraceSpec();
  spec.num_files = 200;
  spec.total_bytes = 4ull << 20;
  spec.num_requests = 2000;
  iolwl::Trace trace = iolwl::Trace::Generate(spec);
  std::vector<FileId> ids = trace.Materialize(&sys.fs());

  iolhttp::FlashLiteServer lite(&sys.ctx(), &sys.net(), &sys.io(), &sys.runtime());
  ioldrv::ExperimentConfig config;
  config.max_requests = 1000;
  config.enforce_cache_budget = true;
  ioldrv::ClosedLoop workload(1);
  ioldrv::Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &lite, config);

  size_t cursor = 0;
  uint64_t expected_bytes = 0;
  std::vector<uint32_t> issued;
  ioldrv::ExperimentResult result = experiment.Run(&workload, [&] {
    uint32_t rank = trace.requests()[cursor % trace.requests().size()];
    issued.push_back(rank);
    ++cursor;
    return ids[rank];
  });

  EXPECT_EQ(result.requests, 1000u);
  // Bytes delivered = sum of (file + header) over the first 1000 issues.
  for (size_t i = 0; i < 1000; ++i) {
    expected_bytes += trace.file_sizes()[issued[i]] + iolhttp::kResponseHeaderBytes;
  }
  EXPECT_EQ(result.bytes, expected_bytes);
  EXPECT_GT(result.megabits_per_sec, 0.0);
}

TEST(EndToEndTest, ConcurrentTraceReplayConservesTotals) {
  // Concurrent variant: completions may reorder, but every counted byte
  // must come from an issued request, and the requested count must land
  // exactly.
  System sys;
  iolwl::TraceSpec spec = iolwl::SubtraceSpec();
  spec.num_files = 200;
  spec.total_bytes = 4ull << 20;
  spec.num_requests = 2000;
  iolwl::Trace trace = iolwl::Trace::Generate(spec);
  std::vector<FileId> ids = trace.Materialize(&sys.fs());

  iolhttp::FlashLiteServer lite(&sys.ctx(), &sys.net(), &sys.io(), &sys.runtime());
  ioldrv::ExperimentConfig config;
  config.max_requests = 1000;
  config.enforce_cache_budget = true;
  ioldrv::ClosedLoop workload(8);
  ioldrv::Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &lite, config);

  size_t cursor = 0;
  uint64_t issued_bytes = 0;
  ioldrv::ExperimentResult result = experiment.Run(&workload, [&] {
    uint32_t rank = trace.requests()[cursor % trace.requests().size()];
    issued_bytes += trace.file_sizes()[rank] + iolhttp::kResponseHeaderBytes;
    ++cursor;
    return ids[rank];
  });

  EXPECT_EQ(result.requests, 1000u);
  EXPECT_GT(result.bytes, 0u);
  EXPECT_LE(result.bytes, issued_bytes);
  EXPECT_GT(result.megabits_per_sec, 0.0);
}

TEST(EndToEndTest, ServersAgreeOnDeliveredByteCount) {
  iolwl::TraceSpec spec = iolwl::SubtraceSpec();
  spec.num_files = 64;
  spec.total_bytes = 2ull << 20;
  spec.num_requests = 500;
  iolwl::Trace trace = iolwl::Trace::Generate(spec);

  auto run = [&](int which) {
    System sys;
    std::vector<FileId> ids = trace.Materialize(&sys.fs());
    std::unique_ptr<iolhttp::HttpServer> server;
    switch (which) {
      case 0:
        server = std::make_unique<iolhttp::FlashServer>(&sys.ctx(), &sys.net(), &sys.io());
        break;
      case 1:
        server = std::make_unique<iolhttp::ApacheServer>(&sys.ctx(), &sys.net(), &sys.io());
        break;
      default:
        server = std::make_unique<iolhttp::FlashLiteServer>(&sys.ctx(), &sys.net(), &sys.io(),
                                                            &sys.runtime());
    }
    ioldrv::ExperimentConfig config;
    config.max_requests = 500;
    ioldrv::ClosedLoop workload(4);
    ioldrv::Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), server.get(),
                                  config);
    size_t cursor = 0;
    return experiment
        .Run(&workload,
             [&] { return ids[trace.requests()[cursor++ % trace.requests().size()]]; })
        .bytes;
  };

  uint64_t flash = run(0);
  uint64_t apache = run(1);
  uint64_t lite = run(2);
  EXPECT_EQ(flash, apache);
  EXPECT_EQ(flash, lite);  // Same workload, same bytes — only costs differ.
}

}  // namespace
