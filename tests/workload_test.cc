// Tests for the synthetic trace generator (Figures 7 and 9 calibration).

#include <gtest/gtest.h>

#include "src/system/system.h"
#include "src/workload/trace.h"

namespace {

using iolwl::Scaled;
using iolwl::Trace;
using iolwl::TraceSpec;

TraceSpec SmallSpec() {
  TraceSpec s = iolwl::SubtraceSpec();
  s.num_files = 500;
  s.total_bytes = 20ull << 20;
  s.num_requests = 20000;
  s.mean_request_bytes = 15 * 1024;
  return s;
}

TEST(TraceTest, GeneratesRequestedCounts) {
  Trace t = Trace::Generate(SmallSpec());
  EXPECT_EQ(t.file_sizes().size(), 500u);
  EXPECT_EQ(t.requests().size(), 20000u);
  for (uint32_t rank : t.requests()) {
    EXPECT_LT(rank, 500u);
  }
}

TEST(TraceTest, TotalBytesNearSpec) {
  Trace t = Trace::Generate(SmallSpec());
  double ratio = static_cast<double>(t.total_bytes()) / (20ull << 20);
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.10);
}

TEST(TraceTest, MeanRequestSizeCalibrated) {
  Trace t = Trace::Generate(SmallSpec());
  double ratio = static_cast<double>(t.MeanRequestBytes()) / (15 * 1024);
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.6);
}

TEST(TraceTest, PopularFilesAreSmallerThanAverage) {
  // The calibration makes request-weighted mean < unweighted mean, i.e.
  // popular files are smaller — the defining property of these traces.
  Trace t = Trace::Generate(SmallSpec());
  uint64_t mean_file = t.total_bytes() / t.file_sizes().size();
  EXPECT_LT(t.MeanRequestBytes(), mean_file);
}

TEST(TraceTest, DeterministicPerSeed) {
  Trace a = Trace::Generate(SmallSpec());
  Trace b = Trace::Generate(SmallSpec());
  EXPECT_EQ(a.file_sizes(), b.file_sizes());
  EXPECT_EQ(a.requests(), b.requests());
  TraceSpec other = SmallSpec();
  other.seed = 999;
  Trace c = Trace::Generate(other);
  EXPECT_NE(a.requests(), c.requests());
}

TEST(TraceTest, CdfIsMonotoneAndSkewed) {
  Trace t = Trace::Generate(SmallSpec());
  auto points = t.Cdf({10, 50, 100, 250, 500});
  ASSERT_EQ(points.size(), 5u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].request_fraction, points[i - 1].request_fraction);
    EXPECT_GE(points[i].data_fraction, points[i - 1].data_fraction);
  }
  // Zipf skew: the top 20% of files absorb most requests but less data.
  EXPECT_GT(points[2].request_fraction, 0.5);
  EXPECT_LT(points[2].data_fraction, points[2].request_fraction);
  // Full coverage at the end.
  EXPECT_NEAR(points[4].request_fraction, 1.0, 1e-9);
  EXPECT_NEAR(points[4].data_fraction, 1.0, 1e-9);
}

TEST(TraceTest, PrefixRestrictsDistinctBytes) {
  Trace t = Trace::Generate(SmallSpec());
  Trace prefix = t.Prefix(5ull << 20);
  EXPECT_LE(prefix.total_bytes(), 5ull << 20);
  EXPECT_FALSE(prefix.requests().empty());
  EXPECT_LT(prefix.requests().size(), t.requests().size() + 1);
  // Every request in the prefix refers to an admitted (within-budget) file.
  uint64_t distinct = 0;
  std::vector<bool> seen(t.file_sizes().size(), false);
  for (uint32_t rank : prefix.requests()) {
    if (!seen[rank]) {
      seen[rank] = true;
      distinct += t.file_sizes()[rank];
    }
  }
  EXPECT_EQ(distinct, prefix.total_bytes());
}

TEST(TraceTest, ScaledKeepsShapeParameters) {
  TraceSpec s = iolwl::EceSpec();
  TraceSpec scaled = Scaled(s, 0.1);
  EXPECT_NEAR(static_cast<double>(scaled.num_files), s.num_files * 0.1, 1.0);
  EXPECT_EQ(scaled.mean_request_bytes, s.mean_request_bytes);
  EXPECT_EQ(scaled.zipf_alpha, s.zipf_alpha);
}

TEST(TraceTest, MaterializeCreatesAllFiles) {
  iolsys::System sys;
  TraceSpec spec = SmallSpec();
  spec.num_files = 50;
  spec.num_requests = 1000;
  Trace t = Trace::Generate(spec);
  std::vector<iolfs::FileId> ids = t.Materialize(&sys.fs());
  ASSERT_EQ(ids.size(), 50u);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(sys.fs().SizeOf(ids[i]), t.file_sizes()[i]);
  }
}

TEST(TraceTest, PaperSpecsCarryPublishedAggregates) {
  EXPECT_EQ(iolwl::EceSpec().num_requests, 783529u);
  EXPECT_EQ(iolwl::EceSpec().num_files, 10195u);
  EXPECT_EQ(iolwl::CsSpec().num_requests, 3746842u);
  EXPECT_EQ(iolwl::MergedSpec().num_files, 37703u);
  EXPECT_EQ(iolwl::SubtraceSpec().num_requests, 28403u);
  EXPECT_EQ(iolwl::SubtraceSpec().num_files, 5459u);
}

// --- Timestamped logs ---------------------------------------------------------

TEST(TimestampedLogTest, SynthesisIsDeterministicAndCoversEveryRequest) {
  TraceSpec spec = SmallSpec();
  spec.num_requests = 2000;
  Trace t = Trace::Generate(spec);
  iolwl::TimestampedLog a = iolwl::SynthesizeArrivals(t, 500.0, /*seed=*/42);
  iolwl::TimestampedLog b = iolwl::SynthesizeArrivals(t, 500.0, /*seed=*/42);
  ASSERT_EQ(a.entries.size(), 2000u);
  ASSERT_EQ(b.entries.size(), 2000u);
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].at, b.entries[i].at);
    EXPECT_EQ(a.entries[i].rank, b.entries[i].rank);
    EXPECT_EQ(a.entries[i].rank, t.requests()[i]);  // Order preserved.
    if (i > 0) {
      EXPECT_GT(a.entries[i].at, a.entries[i - 1].at);  // Strictly advancing.
    }
  }
  // The realized mean rate approximates the requested one.
  EXPECT_NEAR(a.MeanArrivalsPerSec(), 500.0, 50.0);
}

TEST(TimestampedLogTest, DifferentSeedsGiveDifferentInstants) {
  TraceSpec spec = SmallSpec();
  spec.num_requests = 100;
  Trace t = Trace::Generate(spec);
  iolwl::TimestampedLog a = iolwl::SynthesizeArrivals(t, 500.0, 1);
  iolwl::TimestampedLog b = iolwl::SynthesizeArrivals(t, 500.0, 2);
  EXPECT_NE(a.entries.back().at, b.entries.back().at);
}

TEST(TimestampedLogTest, TextRoundTripPreservesEntries) {
  TraceSpec spec = SmallSpec();
  spec.num_requests = 200;
  Trace t = Trace::Generate(spec);
  iolwl::TimestampedLog log = iolwl::SynthesizeArrivals(t, 1000.0, 7);
  iolwl::TimestampedLog parsed = iolwl::TimestampedLog::Parse(log.ToText());
  ASSERT_EQ(parsed.entries.size(), log.entries.size());
  for (size_t i = 0; i < log.entries.size(); ++i) {
    EXPECT_EQ(parsed.entries[i].at, log.entries[i].at);
    EXPECT_EQ(parsed.entries[i].rank, log.entries[i].rank);
  }
}

TEST(TimestampedLogTest, ParseSkipsCommentsAndSortsByTime) {
  iolwl::TimestampedLog log = iolwl::TimestampedLog::Parse(
      "# access log excerpt\n"
      "\n"
      "0.500 3\n"
      "0.250 1\n"
      "  0.750 2\n");
  ASSERT_EQ(log.entries.size(), 3u);
  EXPECT_EQ(log.entries[0].rank, 1u);
  EXPECT_EQ(log.entries[1].rank, 3u);
  EXPECT_EQ(log.entries[2].rank, 2u);
  EXPECT_EQ(log.entries[0].at, iolsim::FromSeconds(0.25));
}

TEST(TimestampedLogTest, MalformedLinesRejectTheWholeLog) {
  EXPECT_TRUE(iolwl::TimestampedLog::Parse("0.5 1\nbogus line\n").entries.empty());
  EXPECT_TRUE(iolwl::TimestampedLog::Parse("-1.0 1\n").entries.empty());
  // A negative rank must reject, not wrap to 4294967295.
  EXPECT_TRUE(iolwl::TimestampedLog::Parse("0.5 -1\n").entries.empty());
  EXPECT_TRUE(iolwl::TimestampedLog::Parse("0.5 4294967296\n").entries.empty());
  // Non-finite instants and trailing garbage are malformed too.
  EXPECT_TRUE(iolwl::TimestampedLog::Parse("nan 1\n").entries.empty());
  EXPECT_TRUE(iolwl::TimestampedLog::Parse("inf 1\n").entries.empty());
  EXPECT_TRUE(iolwl::TimestampedLog::Parse("0.5 1 junk\n").entries.empty());
  EXPECT_TRUE(iolwl::TimestampedLog::Parse("0.5 1.7\n").entries.empty());
  // Instants past the SimTime range would overflow llround into garbage.
  EXPECT_TRUE(iolwl::TimestampedLog::Parse("1e10 0\n").entries.empty());
}

TEST(TimestampedLogTest, MeanRateOfShortLogsIsZero) {
  iolwl::TimestampedLog log;
  EXPECT_EQ(log.MeanArrivalsPerSec(), 0.0);
  log.entries.push_back({iolsim::kSecond, 0});
  EXPECT_EQ(log.MeanArrivalsPerSec(), 0.0);
}

}  // namespace
