// Tests for the synthetic trace generator (Figures 7 and 9 calibration).

#include <gtest/gtest.h>

#include "src/system/system.h"
#include "src/workload/trace.h"

namespace {

using iolwl::Scaled;
using iolwl::Trace;
using iolwl::TraceSpec;

TraceSpec SmallSpec() {
  TraceSpec s = iolwl::SubtraceSpec();
  s.num_files = 500;
  s.total_bytes = 20ull << 20;
  s.num_requests = 20000;
  s.mean_request_bytes = 15 * 1024;
  return s;
}

TEST(TraceTest, GeneratesRequestedCounts) {
  Trace t = Trace::Generate(SmallSpec());
  EXPECT_EQ(t.file_sizes().size(), 500u);
  EXPECT_EQ(t.requests().size(), 20000u);
  for (uint32_t rank : t.requests()) {
    EXPECT_LT(rank, 500u);
  }
}

TEST(TraceTest, TotalBytesNearSpec) {
  Trace t = Trace::Generate(SmallSpec());
  double ratio = static_cast<double>(t.total_bytes()) / (20ull << 20);
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.10);
}

TEST(TraceTest, MeanRequestSizeCalibrated) {
  Trace t = Trace::Generate(SmallSpec());
  double ratio = static_cast<double>(t.MeanRequestBytes()) / (15 * 1024);
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.6);
}

TEST(TraceTest, PopularFilesAreSmallerThanAverage) {
  // The calibration makes request-weighted mean < unweighted mean, i.e.
  // popular files are smaller — the defining property of these traces.
  Trace t = Trace::Generate(SmallSpec());
  uint64_t mean_file = t.total_bytes() / t.file_sizes().size();
  EXPECT_LT(t.MeanRequestBytes(), mean_file);
}

TEST(TraceTest, DeterministicPerSeed) {
  Trace a = Trace::Generate(SmallSpec());
  Trace b = Trace::Generate(SmallSpec());
  EXPECT_EQ(a.file_sizes(), b.file_sizes());
  EXPECT_EQ(a.requests(), b.requests());
  TraceSpec other = SmallSpec();
  other.seed = 999;
  Trace c = Trace::Generate(other);
  EXPECT_NE(a.requests(), c.requests());
}

TEST(TraceTest, CdfIsMonotoneAndSkewed) {
  Trace t = Trace::Generate(SmallSpec());
  auto points = t.Cdf({10, 50, 100, 250, 500});
  ASSERT_EQ(points.size(), 5u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].request_fraction, points[i - 1].request_fraction);
    EXPECT_GE(points[i].data_fraction, points[i - 1].data_fraction);
  }
  // Zipf skew: the top 20% of files absorb most requests but less data.
  EXPECT_GT(points[2].request_fraction, 0.5);
  EXPECT_LT(points[2].data_fraction, points[2].request_fraction);
  // Full coverage at the end.
  EXPECT_NEAR(points[4].request_fraction, 1.0, 1e-9);
  EXPECT_NEAR(points[4].data_fraction, 1.0, 1e-9);
}

TEST(TraceTest, PrefixRestrictsDistinctBytes) {
  Trace t = Trace::Generate(SmallSpec());
  Trace prefix = t.Prefix(5ull << 20);
  EXPECT_LE(prefix.total_bytes(), 5ull << 20);
  EXPECT_FALSE(prefix.requests().empty());
  EXPECT_LT(prefix.requests().size(), t.requests().size() + 1);
  // Every request in the prefix refers to an admitted (within-budget) file.
  uint64_t distinct = 0;
  std::vector<bool> seen(t.file_sizes().size(), false);
  for (uint32_t rank : prefix.requests()) {
    if (!seen[rank]) {
      seen[rank] = true;
      distinct += t.file_sizes()[rank];
    }
  }
  EXPECT_EQ(distinct, prefix.total_bytes());
}

TEST(TraceTest, ScaledKeepsShapeParameters) {
  TraceSpec s = iolwl::EceSpec();
  TraceSpec scaled = Scaled(s, 0.1);
  EXPECT_NEAR(static_cast<double>(scaled.num_files), s.num_files * 0.1, 1.0);
  EXPECT_EQ(scaled.mean_request_bytes, s.mean_request_bytes);
  EXPECT_EQ(scaled.zipf_alpha, s.zipf_alpha);
}

TEST(TraceTest, MaterializeCreatesAllFiles) {
  iolsys::System sys;
  TraceSpec spec = SmallSpec();
  spec.num_files = 50;
  spec.num_requests = 1000;
  Trace t = Trace::Generate(spec);
  std::vector<iolfs::FileId> ids = t.Materialize(&sys.fs());
  ASSERT_EQ(ids.size(), 50u);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(sys.fs().SizeOf(ids[i]), t.file_sizes()[i]);
  }
}

TEST(TraceTest, PaperSpecsCarryPublishedAggregates) {
  EXPECT_EQ(iolwl::EceSpec().num_requests, 783529u);
  EXPECT_EQ(iolwl::EceSpec().num_files, 10195u);
  EXPECT_EQ(iolwl::CsSpec().num_requests, 3746842u);
  EXPECT_EQ(iolwl::MergedSpec().num_files, 37703u);
  EXPECT_EQ(iolwl::SubtraceSpec().num_requests, 28403u);
  EXPECT_EQ(iolwl::SubtraceSpec().num_files, 5459u);
}

}  // namespace
