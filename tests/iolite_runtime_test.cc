// Tests for the IO-Lite runtime: descriptor dispatch, cross-domain mapping
// on aggregate transfer, access checks, and copy-free pipes (Sections 3.2,
// 3.4, 4.4).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/iolite/api.h"
#include "src/iolite/pipe.h"
#include "src/iolite/runtime.h"
#include "src/iolite/stdio_lite.h"
#include "src/simos/sim_context.h"
#include "tests/test_util.h"

namespace {

using iolite::Aggregate;
using iolite::BufferPool;
using iolite::IoLiteRuntime;
using iolite::MakePipe;
using iolite::PipeChannel;
using iolsim::SimContext;

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : runtime_(&ctx_) {}
  SimContext ctx_;
  IoLiteRuntime runtime_;
};

TEST_F(RuntimeTest, PipeTransfersByReference) {
  iolsim::DomainId producer = ctx_.vm().CreateDomain("producer");
  iolsim::DomainId consumer = ctx_.vm().CreateDomain("consumer");
  BufferPool* pool = runtime_.CreatePool("p", producer);
  iolite::PipeEnds pipe = MakePipe(&runtime_, consumer, producer);

  Aggregate msg = ioltest::AggFrom(pool, "the quick brown fox");
  uint64_t copies_before = ctx_.stats().bytes_copied;
  runtime_.IolWrite(pipe.write_fd, msg);
  Aggregate got = runtime_.IolRead(pipe.read_fd, 1024);
  EXPECT_EQ(got.ToString(), "the quick brown fox");
  // No data was copied crossing the pipe.
  EXPECT_EQ(ctx_.stats().bytes_copied, copies_before);
  // Same physical buffer on both sides.
  EXPECT_EQ(got.slices()[0].buffer().get(), msg.slices()[0].buffer().get());
}

TEST_F(RuntimeTest, ReadMapsChunksIntoConsumerDomain) {
  iolsim::DomainId producer = ctx_.vm().CreateDomain("producer");
  iolsim::DomainId consumer = ctx_.vm().CreateDomain("consumer");
  BufferPool* pool = runtime_.CreatePool("p", producer);
  iolite::PipeEnds pipe = MakePipe(&runtime_, consumer, producer);

  Aggregate msg = ioltest::AggFrom(pool, "payload");
  iolsim::ChunkId chunk = msg.slices()[0].buffer()->chunks()[0];
  EXPECT_FALSE(ctx_.vm().CanRead(chunk, consumer));
  runtime_.IolWrite(pipe.write_fd, msg);
  runtime_.IolRead(pipe.read_fd, 1024);
  EXPECT_TRUE(ctx_.vm().CanRead(chunk, consumer));
  // Consumer never gets write access: read-only sharing.
  EXPECT_FALSE(ctx_.vm().CanWrite(chunk, consumer));
}

TEST_F(RuntimeTest, WarmPipeTransferCostsOnlySyscalls) {
  iolsim::DomainId producer = ctx_.vm().CreateDomain("producer");
  iolsim::DomainId consumer = ctx_.vm().CreateDomain("consumer");
  BufferPool* pool = runtime_.CreatePool("p", producer);
  iolite::PipeEnds pipe = MakePipe(&runtime_, consumer, producer);

  // Cold transfer: establishes mappings.
  {
    Aggregate msg = ioltest::AggFrom(pool, std::string(1000, 'a'));
    runtime_.IolWrite(pipe.write_fd, msg);
    runtime_.IolRead(pipe.read_fd, 4096);
  }
  // The buffer is now recycled; warm transfer must do no mapping work.
  uint64_t maps_before = ctx_.stats().chunk_map_ops;
  {
    Aggregate msg = ioltest::AggFrom(pool, std::string(1000, 'b'));
    runtime_.IolWrite(pipe.write_fd, msg);
    Aggregate got = runtime_.IolRead(pipe.read_fd, 4096);
    EXPECT_EQ(got.ToString(), std::string(1000, 'b'));
  }
  EXPECT_EQ(ctx_.stats().chunk_map_ops, maps_before);
  EXPECT_EQ(ctx_.stats().buffers_recycled, 1u);
}

TEST_F(RuntimeTest, PipeSplitsAggregatesOnShortReads) {
  iolsim::DomainId d = ctx_.vm().CreateDomain("proc");
  BufferPool* pool = runtime_.CreatePool("p", d);
  iolite::PipeEnds pipe = MakePipe(&runtime_, d, d);

  runtime_.IolWrite(pipe.write_fd, ioltest::AggFrom(pool, "abcdefghij"));
  Aggregate first = runtime_.IolRead(pipe.read_fd, 4);
  Aggregate second = runtime_.IolRead(pipe.read_fd, 100);
  EXPECT_EQ(first.ToString(), "abcd");
  EXPECT_EQ(second.ToString(), "efghij");
  EXPECT_EQ(runtime_.IolRead(pipe.read_fd, 10).size(), 0u);  // Drained.
}

TEST_F(RuntimeTest, IolReadMayReturnLessThanRequested) {
  iolsim::DomainId d = ctx_.vm().CreateDomain("proc");
  BufferPool* pool = runtime_.CreatePool("p", d);
  iolite::PipeEnds pipe = MakePipe(&runtime_, d, d);
  runtime_.IolWrite(pipe.write_fd, ioltest::AggFrom(pool, "xy"));
  Aggregate got = runtime_.IolRead(pipe.read_fd, 1 << 20);
  EXPECT_EQ(got.size(), 2u);
}

TEST_F(RuntimeTest, CheckAccessReflectsMappings) {
  iolsim::DomainId producer = ctx_.vm().CreateDomain("producer");
  iolsim::DomainId stranger = ctx_.vm().CreateDomain("stranger");
  BufferPool* pool = runtime_.CreatePool("p", producer);
  Aggregate msg = ioltest::AggFrom(pool, "secret");
  EXPECT_TRUE(runtime_.CheckAccess(msg, producer));
  EXPECT_FALSE(runtime_.CheckAccess(msg, stranger));
  EXPECT_TRUE(runtime_.CheckAccess(msg, iolsim::kKernelDomain));
  runtime_.MapAggregate(msg, stranger);
  EXPECT_TRUE(runtime_.CheckAccess(msg, stranger));
}

TEST_F(RuntimeTest, SyscallsAreCharged) {
  iolsim::DomainId d = ctx_.vm().CreateDomain("proc");
  BufferPool* pool = runtime_.CreatePool("p", d);
  iolite::PipeEnds pipe = MakePipe(&runtime_, d, d);
  uint64_t sys_before = ctx_.stats().syscalls;
  runtime_.IolWrite(pipe.write_fd, ioltest::AggFrom(pool, "x"));
  runtime_.IolRead(pipe.read_fd, 10);
  EXPECT_EQ(ctx_.stats().syscalls, sys_before + 2);
}

TEST_F(RuntimeTest, PaperStyleApiWrappers) {
  iolsim::DomainId d = ctx_.vm().CreateDomain("proc");
  BufferPool* pool = runtime_.CreatePool("p", d);
  iolite::PipeEnds pipe = MakePipe(&runtime_, d, d);

  iolite::IOL_Agg out = ioltest::AggFrom(pool, "figure 2");
  EXPECT_EQ(iolite::IOL_write(&runtime_, pipe.write_fd, out), 8u);
  iolite::IOL_Agg in;
  EXPECT_EQ(iolite::IOL_read(&runtime_, pipe.read_fd, &in, 100), 8u);
  EXPECT_EQ(in.ToString(), "figure 2");
}

TEST_F(RuntimeTest, CloseRemovesDescriptor) {
  iolsim::DomainId d = ctx_.vm().CreateDomain("proc");
  iolite::PipeEnds pipe = MakePipe(&runtime_, d, d);
  EXPECT_NE(runtime_.StreamOf(pipe.read_fd), nullptr);
  runtime_.Close(pipe.read_fd);
  EXPECT_EQ(runtime_.StreamOf(pipe.read_fd), nullptr);
}

TEST_F(RuntimeTest, StdioLiteRoundTrip) {
  iolsim::DomainId d = ctx_.vm().CreateDomain("proc");
  BufferPool* pool = runtime_.CreatePool("stdio", d);
  PipeChannel channel(&ctx_);
  iolite::StdioLiteWriter writer(&ctx_, pool, &channel, 16);
  iolite::StdioLiteReader reader(&ctx_, &channel);

  std::string message = "stdio over io-lite pipes, crossing buffer sizes";
  writer.Write(message.data(), message.size());
  writer.Flush();

  std::string got(message.size(), '\0');
  EXPECT_EQ(reader.Read(got.data(), got.size()), message.size());
  EXPECT_EQ(got, message);
}

TEST_F(RuntimeTest, StdioLiteCopiesOnlyAtStdioBoundary) {
  iolsim::DomainId d = ctx_.vm().CreateDomain("proc");
  BufferPool* pool = runtime_.CreatePool("stdio", d);
  PipeChannel channel(&ctx_);
  iolite::StdioLiteWriter writer(&ctx_, pool, &channel, 4096);
  iolite::StdioLiteReader reader(&ctx_, &channel);

  std::string data(4096, 'z');
  uint64_t copies_before = ctx_.stats().bytes_copied;
  writer.Write(data.data(), data.size());
  writer.Flush();
  std::string sink(4096, '\0');
  reader.Read(sink.data(), sink.size());
  // One app->stdio copy and one stdio->app copy; the pipe itself is free.
  EXPECT_EQ(ctx_.stats().bytes_copied - copies_before, 2 * 4096u);
}

}  // namespace
