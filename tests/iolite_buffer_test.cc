// Unit tests for immutable buffers, reference counting, generation numbers
// and buffer pools (Sections 3.1-3.3, 4.5).

#include <gtest/gtest.h>

#include <string>

#include "src/iolite/buffer_pool.h"
#include "src/iolite/runtime.h"
#include "src/simos/sim_context.h"
#include "tests/test_util.h"

namespace {

using iolite::Buffer;
using iolite::BufferPool;
using iolite::BufferRef;
using iolsim::SimContext;

class BufferTest : public ::testing::Test {
 protected:
  BufferTest() : pool_(&ctx_, "test", iolsim::kKernelDomain) {}
  SimContext ctx_;
  BufferPool pool_;
};

TEST_F(BufferTest, FillSealRead) {
  BufferRef b = pool_.Allocate(5);
  EXPECT_FALSE(b->sealed());
  std::memcpy(b->writable_data(), "hello", 5);
  b->Seal(5);
  EXPECT_TRUE(b->sealed());
  EXPECT_EQ(b->size(), 5u);
  EXPECT_EQ(std::string(b->data(), 5), "hello");
}

TEST_F(BufferTest, SealCanShorten) {
  BufferRef b = pool_.Allocate(100);
  std::memcpy(b->writable_data(), "abc", 3);
  b->Seal(3);
  EXPECT_EQ(b->size(), 3u);
  EXPECT_EQ(b->capacity(), 100u);
}

#ifndef NDEBUG
TEST_F(BufferTest, WriteAfterSealAsserts) {
  BufferRef b = pool_.Allocate(4);
  b->Seal(0);
  EXPECT_DEATH(b->writable_data(), "immutable");
}

TEST_F(BufferTest, ReadBeforeSealAsserts) {
  BufferRef b = pool_.Allocate(4);
  EXPECT_DEATH(b->data(), "unsealed");
}
#endif

TEST_F(BufferTest, RefcountLifecycle) {
  Buffer* raw = nullptr;
  {
    BufferRef b = ioltest::BufferFrom(&pool_, "data");
    raw = b.get();
    EXPECT_EQ(raw->refcount(), 1);
    {
      BufferRef copy = b;
      EXPECT_EQ(raw->refcount(), 2);
    }
    EXPECT_EQ(raw->refcount(), 1);
    EXPECT_EQ(pool_.free_list_size(), 0u);
  }
  // Last reference dropped: the buffer returned to the pool's free list.
  EXPECT_EQ(pool_.free_list_size(), 1u);
  EXPECT_EQ(ctx_.stats().buffers_freed, 1u);
}

TEST_F(BufferTest, MoveDoesNotChangeRefcount) {
  BufferRef b = ioltest::BufferFrom(&pool_, "data");
  Buffer* raw = b.get();
  BufferRef moved = std::move(b);
  EXPECT_EQ(raw->refcount(), 1);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move): post-move state check.
  EXPECT_TRUE(moved);
}

TEST_F(BufferTest, RecycleBumpsGeneration) {
  uint64_t id;
  uint32_t gen;
  {
    BufferRef b = ioltest::BufferFrom(&pool_, "aaaa");
    id = b->id();
    gen = b->generation();
  }
  BufferRef again = pool_.Allocate(4);
  EXPECT_EQ(again->id(), id);  // Same storage reused...
  EXPECT_EQ(again->generation(), gen + 1);  // ...new contents identity.
  EXPECT_EQ(ctx_.stats().buffers_recycled, 1u);
}

TEST_F(BufferTest, FreeListFirstFitBySize) {
  {
    BufferRef small = pool_.Allocate(16);
    BufferRef large = pool_.Allocate(1024);
    small->Seal(0);
    large->Seal(0);
  }
  EXPECT_EQ(pool_.free_list_size(), 2u);
  BufferRef b = pool_.Allocate(100);  // Fits only the 1024 buffer.
  EXPECT_GE(b->capacity(), 100u);
  EXPECT_EQ(pool_.free_list_size(), 1u);
}

TEST_F(BufferTest, SmallBuffersShareAChunk) {
  BufferRef a = pool_.Allocate(100);
  BufferRef b = pool_.Allocate(100);
  ASSERT_EQ(a->chunks().size(), 1u);
  ASSERT_EQ(b->chunks().size(), 1u);
  EXPECT_EQ(a->chunks()[0], b->chunks()[0]);  // No memory wasted on pages.
}

TEST_F(BufferTest, LargeBufferSpansChunks) {
  size_t chunk = ctx_.cost().params().chunk_size;
  BufferRef big = pool_.Allocate(3 * chunk + 1);
  EXPECT_EQ(big->chunks().size(), 4u);
}

TEST_F(BufferTest, PoolMemoryIsAccounted) {
  EXPECT_EQ(ctx_.memory().reservation("iolite_window"), 0u);
  BufferRef b = pool_.Allocate(100);
  EXPECT_EQ(ctx_.memory().reservation("iolite_window"),
            static_cast<uint64_t>(ctx_.cost().params().chunk_size));
}

TEST_F(BufferTest, AllocateFromChargesCopy) {
  uint64_t copied = ctx_.stats().bytes_copied;
  ioltest::BufferFrom(&pool_, std::string(1000, 'x'));
  EXPECT_EQ(ctx_.stats().bytes_copied, copied + 1000);
}

TEST_F(BufferTest, AllocateDmaChargesNoCpu) {
  iolsim::SimTime before = ctx_.clock().now();
  BufferRef b = pool_.AllocateDma(1, 4096);
  EXPECT_EQ(ctx_.clock().now(), before);
  EXPECT_EQ(b->size(), 4096u);
}

TEST_F(BufferTest, DmaContentDeterministicPerSeed) {
  BufferRef a = pool_.AllocateDma(7, 256);
  BufferRef b = pool_.AllocateDma(7, 256);
  BufferRef c = pool_.AllocateDma(8, 256);
  EXPECT_EQ(std::memcmp(a->data(), b->data(), 256), 0);
  EXPECT_NE(std::memcmp(a->data(), c->data(), 256), 0);
}

// Untrusted producers pay write-permission toggling; the kernel does not.
TEST(BufferPoolDomainTest, UntrustedProducerTogglesWritePermission) {
  SimContext ctx;
  iolsim::DomainId app = ctx.vm().CreateDomain("app");
  BufferPool pool(&ctx, "app-pool", app);
  {
    BufferRef b = pool.Allocate(64);
    iolsim::ChunkId chunk = b->chunks()[0];
    EXPECT_TRUE(ctx.vm().CanWrite(chunk, app));
    b->Seal(0);
    EXPECT_FALSE(ctx.vm().CanWrite(chunk, app));  // Immutability enforced.
    EXPECT_TRUE(ctx.vm().CanRead(chunk, app));
  }
  // Recycling re-grants write permission for the fill phase.
  BufferRef again = pool.Allocate(64);
  EXPECT_TRUE(ctx.vm().CanWrite(again->chunks()[0], app));
  EXPECT_GE(ctx.stats().page_protect_ops, 2u);
}

TEST(BufferPoolDomainTest, PoolDestructorReleasesMemoryAndChunks) {
  SimContext ctx;
  iolsim::ChunkId chunk;
  {
    BufferPool pool(&ctx, "tmp", iolsim::kKernelDomain);
    BufferRef b = pool.Allocate(10);
    chunk = b->chunks()[0];
    b->Seal(0);
  }
  EXPECT_EQ(ctx.memory().reservation("iolite_window"), 0u);
  EXPECT_FALSE(ctx.vm().ChunkExists(chunk));
}

}  // namespace
