// Tests for the fault plane (src/fault): plan builders and seeded
// generators, Resource degradation windows end to end, the determinism
// contracts (empty plan == no plan, chaos run twice == byte parity), the
// recovery lattice (timeouts, retries, hedging, health ejection), balancer
// ejection handling, tenant tags across retries, the proxy's backhaul
// serve-stale / fail-open behavior, and PinLedger mechanics.
//
// Every test here is fork-free and thread-free (label `fault` in CMake, so
// the TSan job can include it), and every experiment is deterministic: the
// probe-run pattern measures a fault-free run first and schedules the chaos
// relative to its length, so the tests survive cost-model changes.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/cdn/cdn_topology.h"
#include "src/cdn/write_plan.h"
#include "src/driver/cdn_tier.h"
#include "src/driver/edge_mix.h"
#include "src/driver/experiment.h"
#include "src/driver/fleet.h"
#include "src/driver/telemetry.h"
#include "src/driver/workload.h"
#include "src/fault/fault_plan.h"
#include "src/fault/recovery.h"
#include "src/httpd/http_server.h"
#include "src/ipc/process_plane.h"
#include "src/ipc/shm_region.h"
#include "src/ipc/shm_table.h"
#include "src/proxy/proxy_server.h"
#include "src/system/system.h"

namespace {

using ioldrv::ClosedLoop;
using ioldrv::Experiment;
using ioldrv::ExperimentConfig;
using ioldrv::ExperimentResult;
using ioldrv::Fleet;
using ioldrv::kEjected;
using ioldrv::LeastConnectionsBalancer;
using ioldrv::Outcome;
using ioldrv::RequestRecord;
using ioldrv::RoundRobinBalancer;
using ioldrv::Telemetry;
using iolfault::FaultKind;
using iolfault::FaultPlan;
using iolfault::RecoveryConfig;
using iolfs::FileId;
using iolhttp::FlashServer;
using iolsim::kMillisecond;
using iolsim::SimTime;
using iolsys::System;

// --- FaultPlan builders -------------------------------------------------------

TEST(FaultPlanTest, BuildersComposeAndTagKinds) {
  FaultPlan plan;
  plan.AddMemberCrash(5 * kMillisecond, /*member=*/1, 2 * kMillisecond,
                      /*cold_cache=*/false)
      .AddDiskFailSlow(1 * kMillisecond, 2 * kMillisecond, 8, 1)
      .AddDiskFailStop(3 * kMillisecond, 1 * kMillisecond)
      .AddLinkOutage(4 * kMillisecond, 1 * kMillisecond)
      .AddBackhaulFlap(6 * kMillisecond, 2 * kMillisecond);
  ASSERT_EQ(plan.events().size(), 5u);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.has_member_crashes());

  const iolfault::FaultEvent& crash = plan.events()[0];
  EXPECT_EQ(crash.kind, FaultKind::kMemberCrash);
  EXPECT_EQ(crash.at, 5 * kMillisecond);
  EXPECT_EQ(crash.duration, 2 * kMillisecond);
  EXPECT_EQ(crash.target, 1);
  EXPECT_FALSE(crash.cold_cache);

  const iolfault::FaultEvent& slow = plan.events()[1];
  EXPECT_EQ(slow.kind, FaultKind::kDiskFailSlow);
  EXPECT_EQ(slow.slow_num, 8u);
  EXPECT_EQ(slow.slow_den, 1u);

  FaultPlan none;
  EXPECT_TRUE(none.empty());
  EXPECT_FALSE(none.has_member_crashes());
  FaultPlan no_crash;
  no_crash.AddLinkOutage(0, kMillisecond);
  EXPECT_FALSE(no_crash.has_member_crashes());
}

TEST(FaultPlanTest, SeededGeneratorsReproduceExactlyAndVaryBySeed) {
  FaultPlan a;
  FaultPlan b;
  FaultPlan c;
  a.AddRandomCrashes(7, 4, 50 * kMillisecond, 5 * kMillisecond, 500 * kMillisecond);
  b.AddRandomCrashes(7, 4, 50 * kMillisecond, 5 * kMillisecond, 500 * kMillisecond);
  c.AddRandomCrashes(8, 4, 50 * kMillisecond, 5 * kMillisecond, 500 * kMillisecond);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at) << i;
    EXPECT_EQ(a.events()[i].target, b.events()[i].target) << i;
    EXPECT_LT(a.events()[i].at, 500 * kMillisecond) << i;
  }
  bool differs = a.events().size() != c.events().size();
  for (size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].at != c.events()[i].at;
  }
  EXPECT_TRUE(differs);

  FaultPlan d;
  FaultPlan e;
  d.AddRandomDiskFailSlow(11, 40 * kMillisecond, 5 * kMillisecond, 4, 1,
                          400 * kMillisecond);
  e.AddRandomDiskFailSlow(11, 40 * kMillisecond, 5 * kMillisecond, 4, 1,
                          400 * kMillisecond);
  ASSERT_EQ(d.events().size(), e.events().size());
  ASSERT_FALSE(d.empty());
  for (size_t i = 0; i < d.events().size(); ++i) {
    EXPECT_EQ(d.events()[i].at, e.events()[i].at) << i;
    EXPECT_EQ(d.events()[i].kind, FaultKind::kDiskFailSlow) << i;
  }
}

// --- Shared experiment rig ----------------------------------------------------

struct FleetRig {
  std::unique_ptr<System> sys;
  std::vector<std::unique_ptr<iolhttp::HttpServer>> servers;
  std::vector<iolhttp::HttpServer*> members;
  std::vector<FileId> ids;
};

FleetRig MakeRig(int members, int docs, uint64_t doc_bytes, bool prewarm) {
  FleetRig r;
  iolsys::SystemOptions options;
  options.cost.cpu_count = members;
  options.cost.disk_count = members;
  r.sys = std::make_unique<System>(options);
  for (int i = 0; i < docs; ++i) {
    r.ids.push_back(r.sys->fs().CreateFile("doc" + std::to_string(i), doc_bytes));
  }
  for (int i = 0; i < members; ++i) {
    r.servers.push_back(
        std::make_unique<FlashServer>(&r.sys->ctx(), &r.sys->net(), &r.sys->io()));
    r.members.push_back(r.servers.back().get());
  }
  if (prewarm) {
    // Fill the cache without advancing the clock (see TallyScope): these
    // tests measure recovery, not cold-start fill, and fault times are
    // absolute.
    iolsim::Tally fill;
    iolsim::TallyScope scope(&r.sys->ctx(), &fill);
    for (FileId f : r.ids) {
      uint64_t size = r.sys->fs().SizeOf(f);
      r.sys->cache().Insert(
          f, 0, iolite::Aggregate::FromBuffer(r.sys->fs().ReadFromDisk(f, 0, size)));
    }
  }
  return r;
}

ExperimentResult RunRig(FleetRig* r, const FaultPlan* plan,
                        const RecoveryConfig& rec, uint64_t requests,
                        int clients, Telemetry* sink,
                        ioldrv::Workload* workload = nullptr) {
  ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = requests;
  config.warmup_requests = 0;  // Absolute fault times => everything counted.
  config.faults = plan;
  config.recovery = rec;
  ClosedLoop fallback(clients);
  Experiment experiment(
      &r->sys->ctx(), &r->sys->net(), &r->sys->cache(),
      Fleet(r->members, std::make_unique<LeastConnectionsBalancer>()), config);
  iolsim::Rng rng(4242);
  const std::vector<FileId>& ids = r->ids;
  return experiment.Run(workload != nullptr ? workload : &fallback,
                        [&rng, &ids]() -> FileId {
                          return ids[rng.NextBelow(ids.size())];
                        },
                        sink);
}

// Fault-free run length: the anchor the chaos schedules hang off, so the
// tests track the cost model instead of hard-coding times.
SimTime ProbeRunLength(int members, int docs, uint64_t doc_bytes,
                       uint64_t requests, int clients) {
  FleetRig rig = MakeRig(members, docs, doc_bytes, /*prewarm=*/true);
  RecoveryConfig off;
  RunRig(&rig, nullptr, off, requests, clients, nullptr);
  return rig.sys->ctx().clock().now();
}

// --- Resource degradation windows, end to end ---------------------------------

TEST(ResourceWindowTest, DiskFailStopDefersColdReadsPastTheWindow) {
  const SimTime kOutageEnd = 100 * kMillisecond;
  FleetRig calm = MakeRig(1, 1, 8 * 1024, /*prewarm=*/false);
  RecoveryConfig off;
  RunRig(&calm, nullptr, off, 1, 1, nullptr);
  SimTime calm_clock = calm.sys->ctx().clock().now();
  ASSERT_LT(calm_clock, kOutageEnd);  // The cold read alone is much faster.

  FleetRig rig = MakeRig(1, 1, 8 * 1024, /*prewarm=*/false);
  FaultPlan plan;
  plan.AddDiskFailStop(0, kOutageEnd);
  ExperimentResult result = RunRig(&rig, &plan, off, 1, 1, nullptr);
  EXPECT_EQ(result.requests, 1u);
  // The only request needs the stopped disk: it cannot complete before the
  // device comes back.
  EXPECT_GE(rig.sys->ctx().clock().now(), kOutageEnd);
}

TEST(ResourceWindowTest, DiskFailSlowStretchesColdRuns) {
  FleetRig calm = MakeRig(1, 8, 8 * 1024, /*prewarm=*/false);
  RecoveryConfig off;
  RunRig(&calm, nullptr, off, 16, 2, nullptr);
  SimTime calm_clock = calm.sys->ctx().clock().now();

  FleetRig rig = MakeRig(1, 8, 8 * 1024, /*prewarm=*/false);
  FaultPlan plan;
  plan.AddDiskFailSlow(0, 10 * calm_clock, /*num=*/8, /*den=*/1);
  RunRig(&rig, &plan, off, 16, 2, nullptr);
  // Every cold read pays 8x inside the window: the run must stretch well
  // past the fault-free length (not 8x overall — only disk time dilates).
  EXPECT_GT(rig.sys->ctx().clock().now(), calm_clock * 3 / 2);
}

TEST(ResourceWindowTest, LinkOutageParksWarmTrafficUntilHeal) {
  const SimTime kHeal = 50 * kMillisecond;
  FleetRig calm = MakeRig(1, 4, 8 * 1024, /*prewarm=*/true);
  RecoveryConfig off;
  RunRig(&calm, nullptr, off, 8, 2, nullptr);
  ASSERT_LT(calm.sys->ctx().clock().now(), kHeal);

  FleetRig rig = MakeRig(1, 4, 8 * 1024, /*prewarm=*/true);
  FaultPlan plan;
  plan.AddLinkOutage(0, kHeal);
  ExperimentResult result = RunRig(&rig, &plan, off, 8, 2, nullptr);
  EXPECT_EQ(result.requests, 8u);
  // Responses cross the front link; nothing can finish during the outage.
  EXPECT_GE(rig.sys->ctx().clock().now(), kHeal);
}

// --- Determinism contracts ----------------------------------------------------

void ExpectIdenticalStreams(const Telemetry& a, const Telemetry& b) {
  ASSERT_EQ(a.records().size(), b.records().size());
  for (size_t i = 0; i < a.records().size(); ++i) {
    const RequestRecord& x = a.records()[i];
    const RequestRecord& y = b.records()[i];
    EXPECT_EQ(x.issue, y.issue) << i;
    EXPECT_EQ(x.admit, y.admit) << i;
    EXPECT_EQ(x.complete, y.complete) << i;
    EXPECT_EQ(x.bytes, y.bytes) << i;
    EXPECT_EQ(x.server, y.server) << i;
    EXPECT_EQ(x.tenant, y.tenant) << i;
    EXPECT_EQ(x.outcome, y.outcome) << i;
    EXPECT_EQ(x.attempts, y.attempts) << i;
    EXPECT_EQ(x.counted, y.counted) << i;
  }
}

TEST(FaultDeterminismTest, EmptyPlanIsByteIdenticalToNoPlan) {
  Telemetry no_plan;
  Telemetry empty_plan;
  RecoveryConfig off;
  SimTime clock_a = 0;
  SimTime clock_b = 0;
  {
    FleetRig rig = MakeRig(2, 8, 8 * 1024, /*prewarm=*/true);
    RunRig(&rig, nullptr, off, 64, 4, &no_plan);
    clock_a = rig.sys->ctx().clock().now();
  }
  {
    FleetRig rig = MakeRig(2, 8, 8 * 1024, /*prewarm=*/true);
    FaultPlan plan;  // Armed but empty: every fault code path must stay cold.
    RunRig(&rig, &plan, off, 64, 4, &empty_plan);
    clock_b = rig.sys->ctx().clock().now();
  }
  EXPECT_EQ(clock_a, clock_b);
  ExpectIdenticalStreams(no_plan, empty_plan);
}

TEST(FaultDeterminismTest, ChaosRunTwiceIsByteIdentical) {
  SimTime probe = ProbeRunLength(2, 8, 8 * 1024, 200, 4);
  FaultPlan plan;
  plan.AddMemberCrash(probe / 4, 0, probe / 8);
  plan.AddDiskFailSlow(probe / 2, probe / 8, 6, 1);
  plan.AddLinkOutage(probe * 3 / 4, probe / 32);
  RecoveryConfig rec;
  rec.request_timeout = 8 * kMillisecond;
  rec.max_retries = 3;
  rec.retry_backoff = kMillisecond;
  rec.retry_backoff_cap = 4 * kMillisecond;
  rec.hedge_delay = 4 * kMillisecond;
  rec.health_checks = true;
  rec.health_check_interval = kMillisecond;
  rec.unhealthy_after = 1;
  rec.healthy_after = 2;

  Telemetry first;
  Telemetry second;
  SimTime clock_a = 0;
  SimTime clock_b = 0;
  {
    FleetRig rig = MakeRig(2, 8, 8 * 1024, /*prewarm=*/true);
    RunRig(&rig, &plan, rec, 200, 4, &first);
    clock_a = rig.sys->ctx().clock().now();
  }
  {
    FleetRig rig = MakeRig(2, 8, 8 * 1024, /*prewarm=*/true);
    RunRig(&rig, &plan, rec, 200, 4, &second);
    clock_b = rig.sys->ctx().clock().now();
  }
  EXPECT_EQ(clock_a, clock_b);
  ExpectIdenticalStreams(first, second);
}

// --- The recovery lattice -----------------------------------------------------

TEST(RecoveryTest, UnprotectedCrashSurfacesTimeouts) {
  SimTime probe = ProbeRunLength(2, 8, 8 * 1024, 400, 4);
  FleetRig rig = MakeRig(2, 8, 8 * 1024, /*prewarm=*/true);
  FaultPlan plan;
  plan.AddMemberCrash(probe / 4, 0, probe / 4, /*cold_cache=*/false);
  RecoveryConfig rec;
  rec.request_timeout = 6 * kMillisecond;  // Timeout only: nothing recovers.
  Telemetry sink;
  ExperimentResult result = RunRig(&rig, &plan, rec, 400, 4, &sink);
  EXPECT_GT(result.failed_requests, 0u);
  EXPECT_LT(result.availability, 1.0);
  EXPECT_GT(result.blackholed_arrivals, 0u);
  EXPECT_EQ(result.retries, 0u);
  bool saw_timeout = false;
  for (const RequestRecord& r : sink.records()) {
    if (r.outcome == Outcome::kTimedOut) {
      saw_timeout = true;
      EXPECT_EQ(r.bytes, 0u);
    }
  }
  EXPECT_TRUE(saw_timeout);
}

TEST(RecoveryTest, RetriesConvertCrashTimeoutsIntoLateSuccesses) {
  SimTime probe = ProbeRunLength(2, 8, 8 * 1024, 400, 4);
  FleetRig rig = MakeRig(2, 8, 8 * 1024, /*prewarm=*/true);
  FaultPlan plan;
  plan.AddMemberCrash(probe / 4, 0, 10 * kMillisecond, /*cold_cache=*/false);
  RecoveryConfig rec;
  rec.request_timeout = 6 * kMillisecond;
  rec.max_retries = 3;
  rec.retry_backoff = kMillisecond;
  rec.retry_backoff_cap = 4 * kMillisecond;
  Telemetry sink;
  ExperimentResult result = RunRig(&rig, &plan, rec, 400, 4, &sink);
  EXPECT_EQ(result.failed_requests, 0u);
  EXPECT_DOUBLE_EQ(result.availability, 1.0);
  EXPECT_GT(result.retries, 0u);
  bool saw_retried_ok = false;
  for (const RequestRecord& r : sink.records()) {
    if (r.outcome == Outcome::kRetriedOk) {
      saw_retried_ok = true;
      EXPECT_GT(r.attempts, 1u);
      EXPECT_GT(r.bytes, 0u);
    }
  }
  EXPECT_TRUE(saw_retried_ok);
}

TEST(RecoveryTest, HedgesRescueBlackholedRequestsBeforeTheTimeout) {
  SimTime probe = ProbeRunLength(2, 8, 8 * 1024, 400, 4);
  FleetRig rig = MakeRig(2, 8, 8 * 1024, /*prewarm=*/true);
  FaultPlan plan;
  plan.AddMemberCrash(probe / 4, 0, 10 * kMillisecond, /*cold_cache=*/false);
  RecoveryConfig rec;
  rec.request_timeout = 40 * kMillisecond;  // Far too slow to be the rescue.
  rec.max_retries = 1;
  rec.hedge_delay = 3 * kMillisecond;
  Telemetry sink;
  ExperimentResult result = RunRig(&rig, &plan, rec, 400, 4, &sink);
  EXPECT_EQ(result.failed_requests, 0u);
  EXPECT_DOUBLE_EQ(result.availability, 1.0);
  EXPECT_GT(result.hedges, 0u);
  bool saw_hedge_won = false;
  for (const RequestRecord& r : sink.records()) {
    if (r.outcome == Outcome::kHedgeWon) {
      saw_hedge_won = true;
      // The hedge delivered before the primary's 40 ms timeout could fire.
      EXPECT_LT(r.complete - r.issue, rec.request_timeout);
    }
  }
  EXPECT_TRUE(saw_hedge_won);
}

TEST(RecoveryTest, HealthCheckerEjectsTheCrashedMemberAndReadmitsIt) {
  SimTime probe = ProbeRunLength(2, 8, 8 * 1024, 400, 4);
  SimTime crash_at = probe / 4;
  SimTime down_for = probe / 4;
  FleetRig rig = MakeRig(2, 8, 8 * 1024, /*prewarm=*/true);
  FaultPlan plan;
  plan.AddMemberCrash(crash_at, 0, down_for, /*cold_cache=*/false);
  RecoveryConfig rec;
  rec.request_timeout = 8 * kMillisecond;
  rec.max_retries = 3;
  rec.retry_backoff = kMillisecond;
  rec.hedge_delay = 3 * kMillisecond;
  rec.health_checks = true;
  rec.health_check_interval = kMillisecond;
  rec.unhealthy_after = 1;
  rec.healthy_after = 2;
  Telemetry sink;
  ExperimentResult result = RunRig(&rig, &plan, rec, 400, 4, &sink);
  EXPECT_EQ(result.failed_requests, 0u);
  EXPECT_DOUBLE_EQ(result.availability, 1.0);
  EXPECT_EQ(result.health_ejections, 1u);
  // Re-admission: member 0 serves again after its restart.
  bool served_after_restart = false;
  for (const RequestRecord& r : sink.records()) {
    if (r.server == 0 && r.complete > crash_at + down_for) {
      served_after_restart = true;
      break;
    }
  }
  EXPECT_TRUE(served_after_restart);
}

// --- Balancers under ejection -------------------------------------------------

TEST(BalancerTest, RoundRobinSkipsEjectedMembers) {
  RoundRobinBalancer rr;
  std::vector<int> load = {0, kEjected, 0};
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(rr.Pick(load), 1u);
  }
}

TEST(BalancerTest, LeastConnectionsSkipsEjectedMembers) {
  LeastConnectionsBalancer lc;
  // The ejected member "looks" idle; it must still lose to loaded ones.
  std::vector<int> load = {5, kEjected, 7};
  EXPECT_EQ(lc.Pick(load), 0u);
  load = {kEjected, 3, kEjected};
  EXPECT_EQ(lc.Pick(load), 1u);
}

TEST(BalancerTest, AllEjectedFallsBackToANormalPick) {
  RoundRobinBalancer rr;
  LeastConnectionsBalancer lc;
  std::vector<int> load = {kEjected, kEjected, kEjected};
  EXPECT_LT(rr.Pick(load), 3u);
  EXPECT_LT(lc.Pick(load), 3u);
}

// --- Tenant tags across retries -----------------------------------------------

class TenantedLoop : public ClosedLoop {
 public:
  using ClosedLoop::ClosedLoop;
  iolsim::TenantId TenantOf(size_t client, uint64_t issue_seq) override {
    (void)issue_seq;
    return static_cast<iolsim::TenantId>(1 + client % 3);
  }
};

TEST(RecoveryTest, TenantTagSurvivesRetries) {
  SimTime probe = ProbeRunLength(2, 8, 8 * 1024, 400, 4);
  FleetRig rig = MakeRig(2, 8, 8 * 1024, /*prewarm=*/true);
  FaultPlan plan;
  plan.AddMemberCrash(probe / 4, 0, 10 * kMillisecond, /*cold_cache=*/false);
  RecoveryConfig rec;
  rec.request_timeout = 6 * kMillisecond;
  rec.max_retries = 3;
  rec.retry_backoff = kMillisecond;
  TenantedLoop workload(4);
  Telemetry sink;
  ExperimentResult result = RunRig(&rig, &plan, rec, 400, 4, &sink, &workload);
  EXPECT_DOUBLE_EQ(result.availability, 1.0);
  bool saw_retry = false;
  for (const RequestRecord& r : sink.records()) {
    // Every record carries the tenant assigned at first issue; a dropped
    // tag would read 0 (kNoTenant) on the retried attempt's record.
    EXPECT_GE(r.tenant, 1u);
    EXPECT_LE(r.tenant, 3u);
    if (r.attempts > 1) {
      saw_retry = true;
    }
  }
  EXPECT_TRUE(saw_retry);
}

// --- Proxy backhaul: serve-stale and fail-open --------------------------------

struct ProxyRig {
  std::unique_ptr<System> sys;
  std::vector<std::unique_ptr<iolhttp::HttpServer>> origins;
  std::unique_ptr<iolproxy::ProxyServer> proxy;
  std::vector<FileId> files;
};

ProxyRig MakeProxyRig(bool fail_open) {
  ProxyRig r;
  iolsys::SystemOptions options;
  options.cost.cpu_count = 2;
  options.cost.disk_count = 2;
  options.policy = iolsys::SystemOptions::Policy::kGds;
  options.checksum_cache = true;
  r.sys = std::make_unique<System>(options);
  for (int i = 0; i < 3; ++i) {
    r.files.push_back(r.sys->fs().CreateFile("doc" + std::to_string(i), 6 * 1024));
  }
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < 2; ++i) {
    r.origins.push_back(std::make_unique<iolhttp::FlashLiteServer>(
        &r.sys->ctx(), &r.sys->net(), &r.sys->io(), &r.sys->runtime()));
    members.push_back(r.origins.back().get());
  }
  iolproxy::ProxyConfig config;
  config.data_path = iolproxy::ProxyDataPath::kIoLite;
  config.backhaul = iolproxy::BackhaulMode::kRemote;
  config.fail_open = fail_open;
  r.proxy = std::make_unique<iolproxy::ProxyServer>(
      &r.sys->ctx(), &r.sys->net(), &r.sys->io(), &r.sys->runtime(), members,
      config);
  return r;
}

void Drain(System* sys) {
  while (sys->ctx().events().RunOne()) {
  }
}

TEST(ProxyFaultTest, BackhaulOutageServesStaleHitsAndFailsOpenOnMisses) {
  ProxyRig r = MakeProxyRig(/*fail_open=*/true);
  iolnet::TcpConnection conn(&r.sys->net(), true);
  conn.Connect();
  // Warm file 0 through the healthy backhaul.
  r.proxy->HandleRequest(&conn, r.files[0]);
  Drain(r.sys.get());
  ASSERT_EQ(r.proxy->stale_hits(), 0u);

  SimTime now = r.sys->ctx().clock().now();
  SimTime heal = now + 200 * kMillisecond;
  r.proxy->AddBackhaulOutage(now, heal);
  ASSERT_TRUE(r.proxy->BackhaulDown(now));

  // A cached object keeps serving from the proxy tier: serve-stale.
  r.proxy->HandleRequest(&conn, r.files[0]);
  Drain(r.sys.get());
  EXPECT_EQ(r.proxy->stale_hits(), 1u);

  // A miss cannot cross the dead backhaul; fail-open answers it degraded,
  // immediately, instead of parking the client behind the outage.
  r.proxy->HandleRequest(&conn, r.files[1]);
  Drain(r.sys.get());
  EXPECT_EQ(r.proxy->fail_open_serves(), 1u);
  EXPECT_LT(r.sys->ctx().clock().now(), heal);
  conn.Close();
}

TEST(ProxyFaultTest, FailClosedMissesQueueBehindTheOutage) {
  ProxyRig r = MakeProxyRig(/*fail_open=*/false);
  iolnet::TcpConnection conn(&r.sys->net(), true);
  conn.Connect();
  SimTime heal = 30 * kMillisecond;
  r.proxy->AddBackhaulOutage(0, heal);
  // The cold fetch queues on the backhaul Resource until the flap heals:
  // the flap surfaces as tail latency, not an error.
  r.proxy->HandleRequest(&conn, r.files[0]);
  Drain(r.sys.get());
  EXPECT_EQ(r.proxy->fail_open_serves(), 0u);
  EXPECT_GE(r.sys->ctx().clock().now(), heal);
  EXPECT_GT(r.proxy->proxy_cache().entry_count(), 0u);
  conn.Close();
}

TEST(ProxyFaultTest, ArmBackhaulFaultsArmsOnlyFlapEvents) {
  ProxyRig r = MakeProxyRig(/*fail_open=*/false);
  FaultPlan plan;
  plan.AddBackhaulFlap(10 * kMillisecond, 5 * kMillisecond);
  plan.AddLinkOutage(0, 5 * kMillisecond);  // Engine-owned; must be ignored.
  r.proxy->ArmBackhaulFaults(plan);
  EXPECT_FALSE(r.proxy->BackhaulDown(2 * kMillisecond));
  EXPECT_TRUE(r.proxy->BackhaulDown(12 * kMillisecond));
  EXPECT_FALSE(r.proxy->BackhaulDown(16 * kMillisecond));
}

// --- CDN hierarchy: edge serve-stale masks a regional outage ------------------

struct CdnDrillOutput {
  ExperimentResult result;
  Telemetry telemetry;
  SimTime clock = 0;
  uint64_t fail_open_serves = 0;
};

// Two edges behind one regional, kRevalidate with a short TTL, plus a
// deterministic origin write stream so staleness has something to measure.
// `plan` (may be null) is armed onto the hierarchy's backhaul wires.
CdnDrillOutput RunCdnDrill(const FaultPlan* plan, SimTime ttl) {
  CdnDrillOutput out;
  iolsys::SystemOptions options;
  options.cost.cpu_count = 2;
  options.cost.disk_count = 2;
  System sys(options);
  std::vector<FileId> files;
  for (int i = 0; i < 12; ++i) {
    files.push_back(sys.fs().CreateFile("doc" + std::to_string(i), 4 * 1024));
  }
  std::vector<std::unique_ptr<iolhttp::HttpServer>> origins;
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < 2; ++i) {
    origins.push_back(std::make_unique<iolhttp::FlashLiteServer>(
        &sys.ctx(), &sys.net(), &sys.io(), &sys.runtime()));
    members.push_back(origins.back().get());
  }
  iolcdn::CdnTopology topo;
  iolcdn::CdnLevelSpec edge;
  edge.count = 2;
  edge.cache_bytes = 256 * 1024;
  iolcdn::CdnLevelSpec regional;
  regional.count = 1;
  regional.cache_bytes = 1024 * 1024;
  topo.levels = {edge, regional};
  topo.protocol = iolproxy::ConsistencyMode::kRevalidate;
  topo.ttl = ttl;
  iolproxy::ProxyConfig pc;
  pc.data_path = iolproxy::ProxyDataPath::kIoLite;
  pc.backhaul = iolproxy::BackhaulMode::kRemote;
  ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = 400;
  config.warmup_requests = 0;
  ioldrv::CdnTier tier(&sys.ctx(), &sys.net(), &sys.io(), &sys.runtime(),
                       Fleet(members), topo, pc, config);
  if (plan != nullptr) {
    tier.ArmBackhaulFaults(*plan);
  }
  iolcdn::WritePlanSpec wspec;
  wspec.writes_per_sec = 800;
  wspec.num_files = files.size();
  wspec.hot_bias = 1.0;
  wspec.seed = 7;
  iolcdn::WritePlan writes(&sys.ctx(), &tier.authority(), wspec);
  tier.set_write_plan(&writes);
  auto rng = std::make_shared<iolsim::Rng>(99);
  std::vector<ioldrv::EdgePopulationSpec> pops;
  pops.push_back({"metro-a", 2, [rng, &files]() -> FileId {
                    return files[rng->NextBelow(8)];
                  }});
  pops.push_back({"metro-b", 2, [rng, &files]() -> FileId {
                    return files[4 + rng->NextBelow(8)];
                  }});
  ioldrv::EdgeMix mix(std::move(pops));
  out.result =
      tier.Run(&mix, [&files]() { return files[0]; }, &out.telemetry);
  out.clock = sys.ctx().clock().now();
  for (int l = 0; l < tier.level_count(); ++l) {
    for (int i = 0; i < tier.proxies_at(l); ++i) {
      out.fail_open_serves += tier.proxy(l, i).fail_open_serves();
    }
  }
  return out;
}

uint64_t CountDelivered(const Telemetry& t) {
  uint64_t delivered = 0;
  for (const RequestRecord& r : t.records()) {
    if (r.counted && ioldrv::Delivered(r.outcome)) {
      ++delivered;
    }
  }
  return delivered;
}

TEST(CdnFaultTest, EdgeServeStaleMasksRegionalOutage) {
  const SimTime kTtl = 3 * kMillisecond;
  CdnDrillOutput calm = RunCdnDrill(nullptr, kTtl);
  ASSERT_GT(calm.result.requests, 0u);
  ASSERT_GT(calm.result.staleness.count, 0u);
  // Fault-free, the revalidation protocol keeps every serve under the TTL.
  EXPECT_LT(calm.result.staleness.max_ms,
            static_cast<double>(kTtl) / kMillisecond);

  // Take the regional away for the middle half of the run: every edge
  // uplink (level 0) flaps, so edges can neither revalidate nor fetch.
  FaultPlan plan;
  plan.AddBackhaulFlap(calm.clock / 4, calm.clock / 2, /*level=*/0);
  CdnDrillOutput faulted = RunCdnDrill(&plan, kTtl);

  // Availability holds: the same number of requests completes, every
  // counted record is a real delivery, and nothing fell back to degraded
  // fail-open responses — warm edges absorbed the outage.
  EXPECT_EQ(faulted.result.requests, calm.result.requests);
  EXPECT_EQ(CountDelivered(faulted.telemetry),
            CountDelivered(calm.telemetry));
  EXPECT_EQ(faulted.fail_open_serves, 0u);

  // The mask's price is freshness: entries that expired during the flap
  // kept serving, so the staleness tail blows through the TTL bound the
  // calm run obeys.
  EXPECT_GT(faulted.result.staleness.p99_ms, calm.result.staleness.p99_ms);
  EXPECT_GT(faulted.result.staleness.max_ms,
            static_cast<double>(kTtl) / kMillisecond);
}

// --- PinLedger mechanics ------------------------------------------------------

TEST(PinLedgerTest, RecordClearTakeContract) {
  std::unique_ptr<iolipc::ShmRegion> region = iolipc::ShmRegion::Create(1u << 20);
  iolipc::ShmTable table = iolipc::ShmTable::Create(region.get(), 4);
  iolipc::PinLedger ledger =
      iolipc::PinLedger::Create(region.get(), &table, "test.pins");
  ASSERT_TRUE(ledger.valid());

  // Take claims the recorded ticket (+1 so ticket 0 is distinguishable
  // from empty) exactly once.
  ledger.Record(3, 41);
  EXPECT_EQ(ledger.Take(3), 42u);
  EXPECT_EQ(ledger.Take(3), 0u);

  // Clear-before-handoff: a cleared slot sweeps to nothing.
  ledger.Record(5, 7);
  ledger.Clear(5);
  EXPECT_EQ(ledger.Take(5), 0u);

  // Unledgered workers (kNoPinSlot) and out-of-range slots are no-ops.
  ledger.Record(iolipc::kNoPinSlot, 99);
  EXPECT_EQ(ledger.Take(iolipc::kNoPinSlot), 0u);
  EXPECT_EQ(ledger.Take(iolipc::kPinLedgerSlots + 5), 0u);

  // A second attach sees the same slots (the supervisor's view).
  iolipc::PinLedger attached =
      iolipc::PinLedger::Attach(region.get(), table, "test.pins");
  ASSERT_TRUE(attached.valid());
  ledger.Record(9, 123);
  EXPECT_EQ(attached.Take(9), 124u);
}

}  // namespace
