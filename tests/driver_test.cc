// Tests for the composable experiment API (src/driver/): Telemetry's
// deterministic percentiles, load-balancer policies, fleet runs,
// timestamped trace replay, the LoadDriver compatibility wrapper, and the
// engine's single-run guard.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/driver/experiment.h"
#include "src/driver/fleet.h"
#include "src/driver/telemetry.h"
#include "src/driver/workload.h"
#include "src/httpd/driver.h"
#include "src/httpd/http_server.h"
#include "src/system/system.h"
#include "src/workload/trace.h"

namespace {

using ioldrv::ClosedLoop;
using ioldrv::Experiment;
using ioldrv::ExperimentConfig;
using ioldrv::ExperimentResult;
using ioldrv::Fleet;
using ioldrv::LatencySummary;
using ioldrv::LeastConnectionsBalancer;
using ioldrv::RequestRecord;
using ioldrv::RoundRobinBalancer;
using ioldrv::Telemetry;
using ioldrv::TraceReplay;
using iolfs::FileId;
using iolhttp::FlashLiteServer;
using iolhttp::FlashServer;
using iolsim::kMillisecond;
using iolsys::System;

// --- Telemetry ----------------------------------------------------------------

RequestRecord Rec(iolsim::SimTime issue, iolsim::SimTime latency, bool counted = true) {
  RequestRecord r;
  r.issue = issue;
  r.admit = issue;
  r.complete = issue + latency;
  r.counted = counted;
  return r;
}

TEST(TelemetryTest, NearestRankPercentilesAreExact) {
  // Known service times: 1..100 ms. Nearest-rank percentiles are exact
  // sample values, not interpolations.
  Telemetry t;
  for (int i = 1; i <= 100; ++i) {
    t.Record(Rec(i * kMillisecond, i * kMillisecond));
  }
  LatencySummary s = t.EndToEndLatency();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.p50_ms, 50.0);
  EXPECT_DOUBLE_EQ(s.p90_ms, 90.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 99.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
  EXPECT_DOUBLE_EQ(s.mean_ms, 50.5);
}

TEST(TelemetryTest, SmallSamplesUseCeilRank) {
  Telemetry t;
  for (int i = 1; i <= 3; ++i) {
    t.Record(Rec(0, i * kMillisecond));
  }
  LatencySummary s = t.EndToEndLatency();
  EXPECT_DOUBLE_EQ(s.p50_ms, 2.0);  // ceil(0.5 * 3) = 2nd of {1,2,3}.
  EXPECT_DOUBLE_EQ(s.p99_ms, 3.0);  // ceil(0.99 * 3) = 3rd.
}

TEST(TelemetryTest, EmptyRunYieldsZeroedSummaryWithoutNans) {
  Telemetry t;
  LatencySummary s = t.EndToEndLatency();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean_ms, 0.0);
  EXPECT_EQ(s.p50_ms, 0.0);
  EXPECT_EQ(s.p90_ms, 0.0);
  EXPECT_EQ(s.p99_ms, 0.0);
  EXPECT_EQ(s.max_ms, 0.0);
  EXPECT_FALSE(std::isnan(s.mean_ms));
  EXPECT_EQ(t.CacheHitFraction(), 0.0);
}

TEST(TelemetryTest, WarmupRecordsAreKeptButExcludedFromSummaries) {
  Telemetry t;
  // Warmup: enormous cold-start latencies that must not pollute the tail.
  for (int i = 0; i < 10; ++i) {
    t.Record(Rec(0, 900 * kMillisecond, /*counted=*/false));
  }
  for (int i = 1; i <= 4; ++i) {
    t.Record(Rec(0, i * kMillisecond));
  }
  EXPECT_EQ(t.records().size(), 14u);
  LatencySummary s = t.EndToEndLatency();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.max_ms, 4.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 4.0);
}

TEST(TelemetryTest, QueueWaitMeasuresAdmitMinusIssue) {
  Telemetry t;
  RequestRecord r;
  r.issue = 10 * kMillisecond;
  r.admit = 17 * kMillisecond;
  r.complete = 40 * kMillisecond;
  r.counted = true;
  t.Record(r);
  EXPECT_DOUBLE_EQ(t.QueueWait().max_ms, 7.0);
}

// --- Load balancers -----------------------------------------------------------

TEST(LoadBalancerTest, RoundRobinCycles) {
  RoundRobinBalancer rr;
  std::vector<int> load = {5, 0, 9};  // Ignored by round-robin.
  EXPECT_EQ(rr.Pick(load), 0u);
  EXPECT_EQ(rr.Pick(load), 1u);
  EXPECT_EQ(rr.Pick(load), 2u);
  EXPECT_EQ(rr.Pick(load), 0u);
}

TEST(LoadBalancerTest, LeastConnectionsPicksIdlestAndRotatesTies) {
  LeastConnectionsBalancer lc;
  EXPECT_EQ(lc.Pick({3, 0, 2}), 1u);
  EXPECT_EQ(lc.Pick({3, 4, 2}), 2u);
  // All tied: rotation continues from the last pick instead of pinning 0.
  EXPECT_EQ(lc.Pick({1, 1, 1}), 0u);
  EXPECT_EQ(lc.Pick({1, 1, 1}), 1u);
}

// --- Fleet runs ---------------------------------------------------------------

ExperimentResult RunFlashFleet(int members, std::unique_ptr<ioldrv::LoadBalancer> lb,
                               Telemetry* sink = nullptr) {
  iolsys::SystemOptions options;
  options.cost.cpu_count = members;
  options.cost.disk_count = members;
  System sys(options);
  FileId f = sys.fs().CreateFile("doc", 20 * 1024);
  std::vector<std::unique_ptr<iolhttp::HttpServer>> servers;
  std::vector<iolhttp::HttpServer*> members_raw;
  for (int i = 0; i < members; ++i) {
    servers.push_back(std::make_unique<FlashServer>(&sys.ctx(), &sys.net(), &sys.io()));
    members_raw.push_back(servers.back().get());
  }
  ExperimentConfig config;
  config.max_requests = 400;
  config.persistent_connections = true;
  ClosedLoop workload(16);
  Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(),
                        Fleet(members_raw, std::move(lb)), config);
  return experiment.Run(&workload, [f] { return f; }, sink);
}

TEST(FleetTest, RoundRobinSpreadsRequestsEvenly) {
  ExperimentResult result = RunFlashFleet(4, nullptr);  // Default: round-robin.
  EXPECT_EQ(result.requests, 400u);
  ASSERT_EQ(result.per_server.size(), 4u);
  uint64_t total = 0;
  for (const ioldrv::ServerShare& share : result.per_server) {
    total += share.requests;
    // Strict cycling modulo the completion tail: near 100 each.
    EXPECT_GE(share.requests, 90u);
    EXPECT_LE(share.requests, 110u);
    EXPECT_GT(share.bytes, 0u);
    EXPECT_GT(share.peak_concurrent, 0);
  }
  EXPECT_EQ(total, result.requests);
  // Latency percentiles populated and ordered.
  EXPECT_GT(result.latency.p50_ms, 0.0);
  EXPECT_LE(result.latency.p50_ms, result.latency.p99_ms);
  EXPECT_LE(result.latency.p99_ms, result.latency.max_ms);
}

TEST(FleetTest, FourFlashCpusOutrunOne) {
  // Flash on 20 KB persistent connections is CPU-bound; a 4-member fleet
  // (4 CPUs behind the shared link) must beat a single member clearly.
  double one = RunFlashFleet(1, nullptr).megabits_per_sec;
  double four = RunFlashFleet(4, nullptr).megabits_per_sec;
  EXPECT_GT(four, one * 1.3);  // Gain capped by the shared front link.
}

TEST(FleetTest, LeastConnectionsMatchesRoundRobinOnHomogeneousLoad) {
  double rr = RunFlashFleet(4, nullptr).megabits_per_sec;
  double lc =
      RunFlashFleet(4, std::make_unique<LeastConnectionsBalancer>()).megabits_per_sec;
  EXPECT_GT(lc, rr * 0.9);
  EXPECT_LT(lc, rr * 1.1);
}

TEST(FleetTest, TelemetrySinkSeesEveryCountedRequest) {
  Telemetry sink;
  ExperimentResult result = RunFlashFleet(2, nullptr, &sink);
  EXPECT_EQ(sink.records().size(), result.requests);  // No warmup configured.
  for (const RequestRecord& r : sink.records()) {
    EXPECT_GE(r.admit, r.issue);
    EXPECT_GT(r.complete, r.admit);
    EXPECT_GT(r.bytes, 0u);
    EXPECT_LT(r.server, 2u);
  }
  // Single hot document: everything after the first read is a cache hit.
  EXPECT_GT(sink.CacheHitFraction(), 0.9);
}

TEST(FleetTest, SharedSinkAcrossRunsSummarizesEachRunAlone) {
  // A sink may accumulate records over several experiments; each result's
  // latency summary must cover only its own run.
  Telemetry sink;
  ExperimentResult first = RunFlashFleet(1, nullptr, &sink);
  ExperimentResult second = RunFlashFleet(2, nullptr, &sink);
  EXPECT_EQ(sink.records().size(), first.requests + second.requests);
  EXPECT_EQ(second.latency.count, second.requests);
  // The two-member run is faster, so folding the first run's records in
  // would inflate its max; equal machine seeds keep this deterministic.
  EXPECT_LT(second.latency.max_ms, first.latency.max_ms);
}

// --- Timestamped trace replay -------------------------------------------------

iolwl::Trace SmallTrace() {
  iolwl::TraceSpec spec = iolwl::SubtraceSpec();
  spec.num_files = 64;
  spec.total_bytes = 2ull << 20;
  spec.num_requests = 600;
  return iolwl::Trace::Generate(spec);
}

ExperimentResult RunReplay(const iolwl::Trace& trace, const iolwl::TimestampedLog& log) {
  System sys;
  std::vector<FileId> ids = trace.Materialize(&sys.fs());
  FlashLiteServer lite(&sys.ctx(), &sys.net(), &sys.io(), &sys.runtime());
  ExperimentConfig config;
  config.max_requests = log.entries.size();
  TraceReplay workload(&log, ids);
  Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &lite, config);
  return experiment.Run(&workload, [&ids] { return ids[0]; });
}

TEST(TraceReplayTest, DeterministicAcrossRunsWithSameSeed) {
  iolwl::Trace trace = SmallTrace();
  iolwl::TimestampedLog log = iolwl::SynthesizeArrivals(trace, 2000.0, /*seed=*/99);
  ASSERT_EQ(log.entries.size(), 600u);
  ExperimentResult a = RunReplay(trace, log);
  ExperimentResult b = RunReplay(trace, log);
  EXPECT_EQ(a.requests, 600u);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_DOUBLE_EQ(a.megabits_per_sec, b.megabits_per_sec);
  EXPECT_DOUBLE_EQ(a.latency.p99_ms, b.latency.p99_ms);
  EXPECT_GT(a.latency.p99_ms, 0.0);
}

TEST(TraceReplayTest, ArrivalsFollowTheLogInstants) {
  iolwl::Trace trace = SmallTrace();
  iolwl::TimestampedLog log = iolwl::SynthesizeArrivals(trace, 500.0, /*seed=*/7);
  System sys;
  std::vector<FileId> ids = trace.Materialize(&sys.fs());
  FlashLiteServer lite(&sys.ctx(), &sys.net(), &sys.io(), &sys.runtime());
  ExperimentConfig config;
  config.max_requests = log.entries.size();
  TraceReplay workload(&log, ids);
  Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &lite, config);
  Telemetry sink;
  experiment.Run(&workload, [&ids] { return ids[0]; }, &sink);
  ASSERT_EQ(sink.records().size(), log.entries.size());
  // Issue instants are exactly the log's (arrivals never wait for a free
  // lane — the pool grows instead). Records arrive in completion order,
  // which may differ from arrival order, so compare the sorted instants.
  std::vector<iolsim::SimTime> issued;
  for (const RequestRecord& r : sink.records()) {
    issued.push_back(r.issue);
  }
  std::sort(issued.begin(), issued.end());
  for (size_t i = 0; i < issued.size(); ++i) {
    EXPECT_EQ(issued[i], log.entries[i].at) << "entry " << i;
  }
}

TEST(TraceReplayTest, ExhaustedLogEndsTheRun) {
  iolwl::Trace trace = SmallTrace();
  iolwl::TimestampedLog log = iolwl::SynthesizeArrivals(trace, 2000.0, /*seed=*/11);
  System sys;
  std::vector<FileId> ids = trace.Materialize(&sys.fs());
  FlashLiteServer lite(&sys.ctx(), &sys.net(), &sys.io(), &sys.runtime());
  ExperimentConfig config;
  config.max_requests = 1u << 20;  // Far beyond the log: the log ends the run.
  TraceReplay workload(&log, ids);
  Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &lite, config);
  ExperimentResult result = experiment.Run(&workload, [&ids] { return ids[0]; });
  EXPECT_EQ(result.requests, log.entries.size());
}

// --- Compatibility wrapper ----------------------------------------------------

TEST(LoadDriverWrapperTest, MatchesDirectEngineUse) {
  auto run_wrapper = [] {
    System sys;
    FileId f = sys.fs().CreateFile("doc", 50 * 1024);
    FlashServer flash(&sys.ctx(), &sys.net(), &sys.io());
    iolhttp::DriverConfig config;
    config.num_clients = 8;
    config.max_requests = 300;
    config.warmup_requests = 10;
    iolhttp::LoadDriver driver(&sys.ctx(), &sys.net(), &sys.cache(), &flash, config);
    return driver.Run([f] { return f; });
  };
  auto run_engine = [] {
    System sys;
    FileId f = sys.fs().CreateFile("doc", 50 * 1024);
    FlashServer flash(&sys.ctx(), &sys.net(), &sys.io());
    ExperimentConfig config;
    config.max_requests = 300;
    config.warmup_requests = 10;
    ClosedLoop workload(8);
    Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &flash, config);
    return experiment.Run(&workload, [f] { return f; });
  };
  iolhttp::DriverResult wrapper = run_wrapper();
  ExperimentResult engine = run_engine();
  EXPECT_EQ(wrapper.requests, engine.requests);
  EXPECT_EQ(wrapper.bytes, engine.bytes);
  EXPECT_DOUBLE_EQ(wrapper.megabits_per_sec, engine.megabits_per_sec);
  EXPECT_EQ(wrapper.peak_concurrent, engine.peak_concurrent);
}

// --- Single-run guard ---------------------------------------------------------

TEST(ExperimentDeathTest, SecondRunOnSameInstanceAborts) {
  System sys;
  FileId f = sys.fs().CreateFile("doc", 4 * 1024);
  FlashServer flash(&sys.ctx(), &sys.net(), &sys.io());
  ExperimentConfig config;
  config.max_requests = 10;
  ClosedLoop workload(2);
  Experiment experiment(&sys.ctx(), &sys.net(), &sys.cache(), &flash, config);
  experiment.Run(&workload, [f] { return f; });
  EXPECT_DEATH(experiment.Run(&workload, [f] { return f; }), "Run\\(\\) called twice");
}

TEST(ExperimentDeathTest, LoadDriverSecondRunAborts) {
  System sys;
  FileId f = sys.fs().CreateFile("doc", 4 * 1024);
  FlashServer flash(&sys.ctx(), &sys.net(), &sys.io());
  iolhttp::DriverConfig config;
  config.num_clients = 2;
  config.max_requests = 10;
  iolhttp::LoadDriver driver(&sys.ctx(), &sys.net(), &sys.cache(), &flash, config);
  driver.Run([f] { return f; });
  EXPECT_DEATH(driver.Run([f] { return f; }), "Run\\(\\) called twice");
}

}  // namespace
