// Tests for the network subsystem: Internet checksum correctness, the
// generation-keyed checksum cache (Section 3.9), mbuf encapsulation
// (Section 4.1) and the TCP connection model (Sections 5.1, 5.7).

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "src/iolite/buffer_pool.h"
#include "src/net/checksum.h"
#include "src/net/mbuf.h"
#include "src/net/tcp.h"
#include "src/simos/rng.h"
#include "src/simos/sim_context.h"
#include "tests/test_util.h"

namespace {

using iolite::Aggregate;
using iolite::BufferPool;
using iolnet::ChecksumAccumulate;
using iolnet::ChecksumFold;
using iolnet::ChecksumModule;
using iolnet::Mbuf;
using iolnet::MbufChain;
using iolnet::NetworkSubsystem;
using iolnet::TcpConnection;
using iolsim::SimContext;

// Reference implementation: RFC 1071 straight off the definition.
uint16_t ReferenceChecksum(const std::string& data) {
  uint32_t sum = 0;
  for (size_t i = 0; i < data.size(); i += 2) {
    uint32_t word = static_cast<uint8_t>(data[i]) << 8;
    if (i + 1 < data.size()) {
      word |= static_cast<uint8_t>(data[i + 1]);
    }
    sum += word;
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum & 0xffff);
}

TEST(ChecksumTest, MatchesReferenceOnKnownVectors) {
  // RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2 (pre-inversion).
  std::string rfc{"\x00\x01\xf2\x03\xf4\xf5\xf6\xf7", 8};
  EXPECT_EQ(ChecksumFold(ChecksumAccumulate(rfc.data(), rfc.size())),
            static_cast<uint16_t>(~0xddf2 & 0xffff));
  for (const std::string& s :
       {std::string(""), std::string("a"), std::string("ab"), std::string("hello world"),
        std::string(1000, 'x')}) {
    EXPECT_EQ(ChecksumFold(ChecksumAccumulate(s.data(), s.size())), ReferenceChecksum(s)) << s;
  }
}

TEST(ChecksumTest, RandomDataMatchesReference) {
  iolsim::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::string s;
    size_t n = 1 + rng.NextBelow(300);
    for (size_t i = 0; i < n; ++i) {
      s.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    EXPECT_EQ(ChecksumFold(ChecksumAccumulate(s.data(), s.size())), ReferenceChecksum(s));
  }
}

// The per-slice partial sums must compose into the exact message checksum,
// including odd-length slices (byte-swap on odd offsets).
class ChecksumComposeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChecksumComposeTest, SlicedAggregateEqualsWholeMessage) {
  SimContext ctx;
  BufferPool pool(&ctx, "p", iolsim::kKernelDomain);
  ChecksumModule module(&ctx, /*cache_enabled=*/false);
  iolsim::Rng rng(GetParam());

  std::string message;
  size_t n = 50 + rng.NextBelow(500);
  for (size_t i = 0; i < n; ++i) {
    message.push_back(static_cast<char>(rng.NextBelow(256)));
  }

  // Split into random (frequently odd-sized) slices.
  Aggregate agg;
  size_t pos = 0;
  while (pos < message.size()) {
    size_t len = 1 + rng.NextBelow(37);
    if (pos + len > message.size()) {
      len = message.size() - pos;
    }
    agg.Append(ioltest::AggFrom(&pool, message.substr(pos, len)));
    pos += len;
  }

  EXPECT_EQ(module.Checksum(agg), ReferenceChecksum(message));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumComposeTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(ChecksumCacheTest, HitOnSameGenerationMissAfterRealloc) {
  SimContext ctx;
  BufferPool pool(&ctx, "p", iolsim::kKernelDomain);
  ChecksumModule module(&ctx, /*cache_enabled=*/true);

  uint16_t first;
  uint16_t second;
  {
    Aggregate a = ioltest::AggFrom(&pool, std::string(5000, 'q'));
    first = module.Checksum(a);
    EXPECT_EQ(ctx.stats().checksum_cache_hits, 0u);
    second = module.Checksum(a);
    EXPECT_EQ(ctx.stats().checksum_cache_hits, 1u);
    EXPECT_EQ(first, second);
  }
  // Buffer recycled with different contents: generation changed, no hit.
  Aggregate b = ioltest::AggFrom(&pool, std::string(5000, 'r'));
  uint16_t third = module.Checksum(b);
  EXPECT_EQ(ctx.stats().checksum_cache_hits, 1u);
  EXPECT_NE(third, first);
}

TEST(ChecksumCacheTest, CachedSumIsCorrectAfterHit) {
  SimContext ctx;
  BufferPool pool(&ctx, "p", iolsim::kKernelDomain);
  ChecksumModule module(&ctx, true);
  std::string content(777, 'Z');
  Aggregate a = ioltest::AggFrom(&pool, content);
  module.Checksum(a);
  EXPECT_EQ(module.Checksum(a), ReferenceChecksum(content));
}

TEST(ChecksumCacheTest, HitChargesNoCpu) {
  SimContext ctx;
  BufferPool pool(&ctx, "p", iolsim::kKernelDomain);
  ChecksumModule module(&ctx, true);
  Aggregate a = ioltest::AggFrom(&pool, std::string(100000, 'c'));
  module.Checksum(a);
  iolsim::SimTime before = ctx.clock().now();
  module.Checksum(a);
  EXPECT_EQ(ctx.clock().now(), before);
}

TEST(ChecksumCacheTest, DistinctSlicesOfSameBufferCacheSeparately) {
  SimContext ctx;
  BufferPool pool(&ctx, "p", iolsim::kKernelDomain);
  ChecksumModule module(&ctx, true);
  iolite::BufferRef b = ioltest::BufferFrom(&pool, std::string(1000, 'd'));
  Aggregate first = Aggregate::FromSlice(iolite::Slice(b, 0, 500));
  Aggregate second = Aggregate::FromSlice(iolite::Slice(b, 500, 500));
  module.Checksum(first);
  module.Checksum(second);
  EXPECT_EQ(ctx.stats().checksum_cache_hits, 0u);
  module.Checksum(first);
  EXPECT_EQ(ctx.stats().checksum_cache_hits, 1u);
}

TEST(MbufTest, InlineAndExternalStorage) {
  SimContext ctx;
  BufferPool pool(&ctx, "p", iolsim::kKernelDomain);
  Mbuf inline_m = Mbuf::Inline("hdr", 3);
  EXPECT_FALSE(inline_m.is_external());
  EXPECT_EQ(std::string(inline_m.data(), inline_m.length()), "hdr");

  iolite::BufferRef b = ioltest::BufferFrom(&pool, "bulk-data-lives-out-of-line");
  Mbuf ext = Mbuf::External(iolite::Slice(b, 0, b->size()));
  EXPECT_TRUE(ext.is_external());
  EXPECT_EQ(std::string(ext.data(), ext.length()), "bulk-data-lives-out-of-line");
  EXPECT_EQ(b->refcount(), 2);  // The mbuf holds a reference.
}

TEST(MbufTest, ChainFromAggregatePreservesBytesWithoutCopy) {
  SimContext ctx;
  BufferPool pool(&ctx, "p", iolsim::kKernelDomain);
  Aggregate agg = ioltest::AggFrom(&pool, "abc");
  agg.Append(ioltest::AggFrom(&pool, "defg"));
  uint64_t copies = ctx.stats().bytes_copied;
  MbufChain chain = MbufChain::FromAggregate(agg);
  EXPECT_EQ(chain.length(), 7u);
  EXPECT_EQ(chain.mbufs().size(), 2u);
  EXPECT_EQ(ctx.stats().bytes_copied, copies);
}

// --- TCP --------------------------------------------------------------------

class TcpTest : public ::testing::Test {
 protected:
  TcpTest() : net_(&ctx_, true), pool_(&ctx_, "p", iolsim::kKernelDomain) {}
  SimContext ctx_;
  NetworkSubsystem net_;
  BufferPool pool_;
};

TEST_F(TcpTest, CopySocketReservesSendBuffer) {
  TcpConnection conn(&net_, /*iolite_sockets=*/false);
  conn.Connect();
  EXPECT_EQ(net_.send_buffer_bytes(), ctx_.cost().params().socket_send_buffer_bytes);
  conn.Close();
  EXPECT_EQ(net_.send_buffer_bytes(), 0u);
}

TEST_F(TcpTest, IoliteSocketReservesOnlyMbufHeaders) {
  TcpConnection conn(&net_, /*iolite_sockets=*/true);
  conn.Connect();
  EXPECT_LT(net_.send_buffer_bytes(), 4096u);
  conn.Close();
}

TEST_F(TcpTest, ManyCopyConnectionsEatTheCacheBudget) {
  // Section 5.7: send-buffer memory scales with the client population for
  // copy-based servers.
  std::vector<std::unique_ptr<TcpConnection>> conns;
  uint64_t budget_before = ctx_.memory().CacheBudget();
  for (int i = 0; i < 100; ++i) {
    conns.push_back(std::make_unique<TcpConnection>(&net_, false));
    conns.back()->Connect();
  }
  EXPECT_EQ(budget_before - ctx_.memory().CacheBudget(),
            100 * ctx_.cost().params().socket_send_buffer_bytes);
  EXPECT_EQ(net_.open_connections(), 100);
}

TEST_F(TcpTest, ConnectChargesSetupCost) {
  TcpConnection conn(&net_, true);
  iolsim::SimTime before = ctx_.clock().now();
  conn.Connect();
  EXPECT_EQ(ctx_.clock().now() - before, ctx_.cost().TcpSetupCost());
  EXPECT_EQ(ctx_.stats().tcp_connections, 1u);
}

TEST_F(TcpTest, SendCopyTouchesEveryByteTwice) {
  TcpConnection conn(&net_, false);
  conn.Connect();
  Aggregate payload = ioltest::AggFrom(&pool_, std::string(10000, 'p'));
  uint64_t copied = ctx_.stats().bytes_copied;
  uint64_t summed = ctx_.stats().bytes_checksummed;
  conn.SendCopy(payload);
  EXPECT_EQ(ctx_.stats().bytes_copied - copied, 10000u);
  EXPECT_EQ(ctx_.stats().bytes_checksummed - summed, 10000u);
  EXPECT_EQ(conn.bytes_sent(), 10000u);
}

TEST_F(TcpTest, SendAggregateCopiesNothing) {
  TcpConnection conn(&net_, true);
  conn.Connect();
  Aggregate payload = ioltest::AggFrom(&pool_, std::string(10000, 'p'));
  uint64_t copied = ctx_.stats().bytes_copied;
  conn.SendAggregate(payload);
  EXPECT_EQ(ctx_.stats().bytes_copied, copied);
  // First transmission: checksummed once...
  EXPECT_EQ(ctx_.stats().bytes_checksummed, 10000u);
  conn.SendAggregate(payload);
  // ...second transmission served from the checksum cache.
  EXPECT_EQ(ctx_.stats().bytes_checksummed, 10000u);
  EXPECT_EQ(ctx_.stats().checksum_cache_hits, 1u);
}

TEST_F(TcpTest, RepeatCopySendsCannotUseChecksumCache) {
  TcpConnection conn(&net_, false);
  conn.Connect();
  Aggregate payload = ioltest::AggFrom(&pool_, std::string(5000, 'p'));
  conn.SendCopy(payload);
  conn.SendCopy(payload);
  // Both transmissions checksummed in full: the private copy has no
  // system-wide identity.
  EXPECT_EQ(ctx_.stats().bytes_checksummed, 10000u);
  EXPECT_EQ(ctx_.stats().checksum_cache_hits, 0u);
}

TEST_F(TcpTest, PacketsChargedPerMss) {
  TcpConnection conn(&net_, true);
  conn.Connect();
  uint64_t packets = ctx_.stats().packets_sent;
  Aggregate payload = ioltest::AggFrom(&pool_, std::string(4000, 'p'));
  conn.SendAggregate(payload);
  EXPECT_EQ(ctx_.stats().packets_sent - packets, 3u);  // ceil(4000/1460).
}

TEST_F(TcpTest, GatheredCopyChecksumMatchesContent) {
  TcpConnection conn(&net_, false);
  conn.Connect();
  Aggregate body = ioltest::AggFrom(&pool_, "body-bytes");
  size_t sent = conn.SendGatheredCopy("HDR:", 4, body);
  EXPECT_EQ(sent, 14u);
}

TEST(DelayRouterTest, RoundTripIsTwiceOneWay) {
  iolnet::DelayRouter router{25 * iolsim::kMillisecond};
  EXPECT_EQ(router.RoundTrip(), 50 * iolsim::kMillisecond);
}

}  // namespace
