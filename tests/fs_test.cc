// Tests for the simulated file system, the unified file cache, replacement
// policies and the eviction trigger (Sections 3.5, 3.7, 4.2).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/fs/file_cache.h"
#include "src/fs/file_io.h"
#include "src/fs/replacement_policy.h"
#include "src/fs/sim_file_system.h"
#include "src/system/system.h"
#include "tests/test_util.h"

namespace {

using iolfs::EvictionTrigger;
using iolfs::FileCache;
using iolfs::FileId;
using iolfs::GreedyDualSizePolicy;
using iolfs::PaperLruPolicy;
using iolfs::PlainLruPolicy;
using iolsys::System;

class FsTest : public ::testing::Test {
 protected:
  System sys_;
};

TEST_F(FsTest, CreateAndLookup) {
  FileId f = sys_.fs().CreateFile("a.html", 1000);
  EXPECT_EQ(sys_.fs().Lookup("a.html"), f);
  EXPECT_EQ(sys_.fs().Lookup("missing"), iolfs::kInvalidFile);
  EXPECT_EQ(sys_.fs().SizeOf(f), 1000u);
  EXPECT_EQ(sys_.fs().file_count(), 1u);
}

TEST_F(FsTest, DiskReadReturnsDeterministicContent) {
  FileId f = sys_.fs().CreateFile("a", 4096);
  iolite::BufferRef b1 = sys_.fs().ReadFromDisk(f, 100, 200);
  std::string expected = ioltest::FileContent(sys_.fs(), f, 100, 200);
  EXPECT_EQ(std::string(b1->data(), 200), expected);
  // Reading again regenerates identical bytes.
  iolite::BufferRef b2 = sys_.fs().ReadFromDisk(f, 100, 200);
  EXPECT_EQ(std::memcmp(b1->data(), b2->data(), 200), 0);
}

TEST_F(FsTest, DifferentFilesDifferentContent) {
  FileId a = sys_.fs().CreateFile("a", 256);
  FileId b = sys_.fs().CreateFile("b", 256);
  EXPECT_NE(ioltest::FileContent(sys_.fs(), a, 0, 256),
            ioltest::FileContent(sys_.fs(), b, 0, 256));
}

TEST_F(FsTest, DiskReadChargesDiskTime) {
  FileId f = sys_.fs().CreateFile("a", 64 * 1024);
  iolsim::SimTime before = sys_.ctx().clock().now();
  sys_.fs().ReadFromDisk(f, 0, 64 * 1024);
  EXPECT_GT(sys_.ctx().clock().now() - before, 8 * iolsim::kMillisecond);
  EXPECT_EQ(sys_.ctx().stats().disk_reads, 1u);
  EXPECT_EQ(sys_.ctx().stats().disk_bytes_read, 64u * 1024);
}

TEST_F(FsTest, WriteOverlayWinsOnLaterReads) {
  FileId f = sys_.fs().CreateFile("a", 1000);
  std::string payload = "WRITTEN-DATA";
  iolite::Aggregate data = ioltest::AggFrom(sys_.runtime().kernel_pool(), payload);
  sys_.fs().WriteToDisk(f, 100, data);
  iolite::BufferRef b = sys_.fs().ReadFromDisk(f, 90, 40);
  EXPECT_EQ(std::string(b->data() + 10, payload.size()), payload);
  // Bytes before and after the write are untouched synthetic content.
  EXPECT_EQ(std::string(b->data(), 10), ioltest::FileContent(sys_.fs(), f, 90, 10));
}

TEST_F(FsTest, OverlappingWritesLastWins) {
  FileId f = sys_.fs().CreateFile("a", 100);
  auto* pool = sys_.runtime().kernel_pool();
  sys_.fs().WriteToDisk(f, 10, ioltest::AggFrom(pool, "aaaaaaaaaa"));  // [10,20)
  sys_.fs().WriteToDisk(f, 15, ioltest::AggFrom(pool, "bbbbbbbbbb"));  // [15,25)
  iolite::BufferRef b = sys_.fs().ReadFromDisk(f, 10, 15);
  EXPECT_EQ(std::string(b->data(), 15), "aaaaabbbbbbbbbb");
}

TEST_F(FsTest, WriteExtendsFile) {
  FileId f = sys_.fs().CreateFile("a", 10);
  auto* pool = sys_.runtime().kernel_pool();
  sys_.fs().WriteToDisk(f, 8, ioltest::AggFrom(pool, "0123456789"));
  EXPECT_EQ(sys_.fs().SizeOf(f), 18u);
}

TEST_F(FsTest, MetadataCacheAvoidsRepeatInodeReads) {
  FileId f = sys_.fs().CreateFile("a", 10);
  uint64_t reads_before = sys_.ctx().stats().disk_reads;
  sys_.fs().TouchMetadata(f);
  EXPECT_EQ(sys_.ctx().stats().disk_reads, reads_before + 1);
  sys_.fs().TouchMetadata(f);
  EXPECT_EQ(sys_.ctx().stats().disk_reads, reads_before + 1);  // Hit.
}

// --- FileIoService / cache behaviour ----------------------------------------

TEST_F(FsTest, ReadExtentCachesAndHits) {
  FileId f = sys_.fs().CreateFile("a", 8192);
  bool miss = false;
  iolite::Aggregate first = sys_.io().ReadExtent(f, 0, 8192, &miss);
  EXPECT_TRUE(miss);
  iolite::Aggregate second = sys_.io().ReadExtent(f, 0, 8192, &miss);
  EXPECT_FALSE(miss);
  EXPECT_TRUE(first.ContentEquals(second));
  // The hit shares the same physical buffer: single copy in memory.
  EXPECT_EQ(first.slices()[0].buffer().get(), second.slices()[0].buffer().get());
  EXPECT_EQ(sys_.ctx().stats().disk_reads, 1u);
}

TEST_F(FsTest, SubrangeOfCachedExtentIsAHit) {
  FileId f = sys_.fs().CreateFile("a", 8192);
  sys_.io().ReadExtent(f, 0, 8192);
  bool miss = true;
  iolite::Aggregate mid = sys_.io().ReadExtent(f, 1000, 500, &miss);
  EXPECT_FALSE(miss);
  EXPECT_EQ(mid.ToString(), ioltest::FileContent(sys_.fs(), f, 1000, 500));
}

TEST_F(FsTest, AdjacentEntriesAssembleACoveringRead) {
  FileId f = sys_.fs().CreateFile("a", 8192);
  sys_.io().ReadExtent(f, 0, 4096);
  sys_.io().ReadExtent(f, 4096, 4096);
  bool miss = true;
  iolite::Aggregate spanning = sys_.io().ReadExtent(f, 4000, 200, &miss);
  EXPECT_FALSE(miss);
  EXPECT_EQ(spanning.slice_count(), 2u);
  EXPECT_EQ(spanning.ToString(), ioltest::FileContent(sys_.fs(), f, 4000, 200));
}

TEST_F(FsTest, SnapshotSemanticsAcrossWrite) {
  // Section 3.5: an IOL_read followed by an IOL_write to the same range —
  // the reader's aggregate must keep showing the old data.
  FileId f = sys_.fs().CreateFile("a", 1024);
  iolite::Aggregate snapshot = sys_.io().ReadExtent(f, 0, 1024);
  std::string old_content = snapshot.ToString();

  std::string new_content(1024, 'N');
  sys_.io().WriteExtent(f, 0, ioltest::AggFrom(sys_.runtime().kernel_pool(), new_content));

  // New readers see the write...
  EXPECT_EQ(sys_.io().ReadExtent(f, 0, 1024).ToString(), new_content);
  // ...the old snapshot is untouched (buffers persist while referenced).
  EXPECT_EQ(snapshot.ToString(), old_content);
}

TEST_F(FsTest, WriteReplacesOverlappedPortionOnly) {
  FileId f = sys_.fs().CreateFile("a", 3000);
  sys_.io().ReadExtent(f, 0, 3000);
  std::string mid(1000, 'M');
  sys_.io().WriteExtent(f, 1000, ioltest::AggFrom(sys_.runtime().kernel_pool(), mid));
  bool miss = true;
  iolite::Aggregate all = sys_.io().ReadExtent(f, 0, 3000, &miss);
  EXPECT_FALSE(miss);  // Remainders were re-inserted, still fully cached.
  EXPECT_EQ(all.ToString().substr(1000, 1000), mid);
  EXPECT_EQ(all.ToString().substr(0, 1000),
            ioltest::FileContent(sys_.fs(), f, 0, 1000));
}

TEST_F(FsTest, CacheBytesTrackEntries) {
  FileId f = sys_.fs().CreateFile("a", 4096);
  EXPECT_EQ(sys_.cache().bytes(), 0u);
  sys_.io().ReadExtent(f, 0, 4096);
  EXPECT_EQ(sys_.cache().bytes(), 4096u);
  sys_.cache().InvalidateFile(f);
  EXPECT_EQ(sys_.cache().bytes(), 0u);
  EXPECT_EQ(sys_.cache().entry_count(), 0u);
}

TEST_F(FsTest, EnforceBudgetEvictsDownToBudget) {
  for (int i = 0; i < 10; ++i) {
    FileId f = sys_.fs().CreateFile("f" + std::to_string(i), 10000);
    sys_.io().ReadExtent(f, 0, 10000);
  }
  EXPECT_EQ(sys_.cache().bytes(), 100000u);
  int evicted = sys_.cache().EnforceBudget(35000);
  EXPECT_EQ(evicted, 7);
  EXPECT_LE(sys_.cache().bytes(), 35000u);
}

TEST_F(FsTest, EvictedDataPersistsWhileReferenced) {
  FileId f = sys_.fs().CreateFile("a", 2048);
  iolite::Aggregate held = sys_.io().ReadExtent(f, 0, 2048);
  std::string content = held.ToString();
  sys_.cache().EnforceBudget(0);  // Evict everything.
  EXPECT_EQ(sys_.cache().entry_count(), 0u);
  EXPECT_EQ(held.ToString(), content);  // Reference keeps the buffer alive.
}

TEST_F(FsTest, IsReferencedSeesOutsideHolders) {
  FileId f = sys_.fs().CreateFile("a", 512);
  {
    iolite::Aggregate held = sys_.io().ReadExtent(f, 0, 512);
    // One entry; the server still holds the aggregate.
    EXPECT_TRUE(sys_.cache().IsReferenced(1));
  }
  // Dropped: only the cache holds it now.
  EXPECT_FALSE(sys_.cache().IsReferenced(1));
}

// --- Replacement policies ----------------------------------------------------

TEST(PolicyTest, PlainLruEvictsLeastRecentlyUsed) {
  PlainLruPolicy p;
  p.OnInsert(1, 100);
  p.OnInsert(2, 100);
  p.OnInsert(3, 100);
  p.OnAccess(1);  // 1 is now most recent.

  // CacheView is unused by PlainLru; a trivial stub suffices.
  class NullView : public iolfs::CacheView {
   public:
    bool IsReferenced(iolfs::EntryId) const override { return false; }
    size_t SizeOf(iolfs::EntryId) const override { return 100; }
  } view;

  EXPECT_EQ(p.ChooseVictim(view), 2u);
  p.OnErase(2);
  EXPECT_EQ(p.ChooseVictim(view), 3u);
}

TEST(PolicyTest, PaperLruPrefersUnreferencedEntries) {
  PaperLruPolicy p;
  p.OnInsert(1, 100);
  p.OnInsert(2, 100);
  p.OnInsert(3, 100);

  // Entry 1 is the LRU but is currently referenced outside the cache.
  class View : public iolfs::CacheView {
   public:
    bool IsReferenced(iolfs::EntryId id) const override { return id == 1; }
    size_t SizeOf(iolfs::EntryId) const override { return 100; }
  } view;

  // LRU among unreferenced: 2.
  EXPECT_EQ(p.ChooseVictim(view), 2u);
  p.OnErase(2);
  p.OnErase(3);
  // Only the referenced entry remains: fall back to LRU among referenced.
  EXPECT_EQ(p.ChooseVictim(view), 1u);
}

TEST(PolicyTest, GdsFavorsSmallObjects) {
  GreedyDualSizePolicy p;
  p.OnInsert(1, 1000000);  // Large: low priority.
  p.OnInsert(2, 100);      // Small: high priority.

  class NullView : public iolfs::CacheView {
   public:
    bool IsReferenced(iolfs::EntryId) const override { return false; }
    size_t SizeOf(iolfs::EntryId) const override { return 0; }
  } view;

  EXPECT_EQ(p.ChooseVictim(view), 1u);
}

TEST(PolicyTest, GdsAgingLetsIdleSmallObjectsGo) {
  GreedyDualSizePolicy p;
  class NullView : public iolfs::CacheView {
   public:
    bool IsReferenced(iolfs::EntryId) const override { return false; }
    size_t SizeOf(iolfs::EntryId) const override { return 0; }
  } view;

  p.OnInsert(1, 100);  // Small but never touched again.
  // A churn of slightly larger entries: each eviction raises the inflation
  // value L, so the idle entry's stale priority eventually loses even
  // though it is the smallest object in the cache.
  for (int i = 0; i < 50; ++i) {
    iolfs::EntryId id = 100 + i;
    p.OnInsert(id, 150);
    p.OnAccess(id);
    iolfs::EntryId victim = p.ChooseVictim(view);
    p.OnErase(victim);
    if (victim == 1) {
      SUCCEED();  // Aged out despite being small.
      return;
    }
  }
  FAIL() << "small idle entry never aged out";
}

TEST(PolicyTest, GdsRecencyBeatsSizeAfterAging) {
  GreedyDualSizePolicy p;
  class NullView : public iolfs::CacheView {
   public:
    bool IsReferenced(iolfs::EntryId) const override { return false; }
    size_t SizeOf(iolfs::EntryId) const override { return 0; }
  } view;
  p.OnInsert(1, 500);
  p.OnInsert(2, 500);
  p.OnErase(p.ChooseVictim(view));  // Raises L.
  p.OnInsert(3, 500);               // Inserted at L + 1/500.
  // Whichever of {1,2} survived was inserted at the old L: lower priority.
  iolfs::EntryId victim = p.ChooseVictim(view);
  EXPECT_NE(victim, 3u);
}

// --- Eviction trigger (Section 3.7) ------------------------------------------

TEST_F(FsTest, EvictionTriggerFiresOnIoPageMajority) {
  for (int i = 0; i < 4; ++i) {
    FileId f = sys_.fs().CreateFile("t" + std::to_string(i), 4096);
    sys_.io().ReadExtent(f, 0, 4096);
  }
  EvictionTrigger trigger(&sys_.cache());
  size_t entries_before = sys_.cache().entry_count();

  // A single I/O page is already a majority of one: the rule fires.
  EXPECT_TRUE(trigger.OnPageSelected(true));
  EXPECT_EQ(sys_.cache().entry_count(), entries_before - 1);

  // After the window reset, non-I/O pages keep it quiet.
  EXPECT_FALSE(trigger.OnPageSelected(false));
  EXPECT_FALSE(trigger.OnPageSelected(false));
  EXPECT_FALSE(trigger.OnPageSelected(true));  // 1/3: not a majority.
  EXPECT_EQ(sys_.cache().entry_count(), entries_before - 1);

  // Two more I/O pages: 3/5 is a majority -> evict one entry.
  EXPECT_FALSE(trigger.OnPageSelected(true));  // 2/4: not > half.
  EXPECT_TRUE(trigger.OnPageSelected(true));   // 3/5: fires.
  EXPECT_EQ(sys_.cache().entry_count(), entries_before - 2);
  EXPECT_EQ(trigger.evictions(), 2u);
}

TEST_F(FsTest, CustomPolicyHookSwapsPolicies) {
  // Flash-Lite's customization: replace the default policy with GDS while
  // entries exist; the cache re-registers them.
  for (int i = 0; i < 3; ++i) {
    FileId f = sys_.fs().CreateFile("c" + std::to_string(i), 1000 * (i + 1));
    sys_.io().ReadExtent(f, 0, 1000 * (i + 1));
  }
  sys_.cache().SetPolicy(std::make_unique<GreedyDualSizePolicy>());
  EXPECT_STREQ(sys_.cache().policy().name(), "gds");
  // GDS evicts the largest (lowest 1/size priority) first.
  uint64_t before = sys_.cache().bytes();
  sys_.cache().EvictOne();
  EXPECT_EQ(sys_.cache().bytes(), before - 3000);
}

}  // namespace
